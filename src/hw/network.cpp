#include "hw/network.hpp"

#include <algorithm>

#include "hw/switch.hpp"

namespace fastnet::hw {

Network::Network(sim::Simulator& sim, const graph::Graph& g, ModelParams params,
                 cost::Metrics& metrics, NetworkConfig config)
    : sim_(sim),
      graph_(g),
      params_(params),
      metrics_(metrics),
      config_(config),
      trace_(config_.trace.get()),
      monitors_(config_.monitors.get()),
      rng_(config.seed),
      fault_rng_(Rng::stream(config.seed, 0xfa017ULL)),
      node_down_(g.node_count(), 0),
      downed_head_(g.node_count(), kNoDowned),
      edge_ports_(g.edge_count(), {kNoPort, kNoPort}),
      links_(g.edge_count()) {
    FASTNET_EXPECTS(metrics.node_count() == g.node_count());
    // This loop also finalizes the graph's CSR on the constructing thread
    // — mirrors sharing one graph in parallel mode rely on that.
    std::size_t max_degree = 0;
    for (NodeId u = 0; u < g.node_count(); ++u) {
        PortId p = 0;
        for (const graph::IncidentEdge& ie : g.incident(u)) {
            ++p;  // port 0 = NCU; link ports follow insertion order
            edge_ports_[ie.edge][g.edge(ie.edge).a == u ? 0 : 1] = p;
        }
        max_degree = std::max(max_degree, static_cast<std::size_t>(p));
    }
    // k bits per label: port ids 0..max_degree plus the copy flag.
    label_bits_ = ceil_log2(max_degree + 1) + 1;
}

void Network::set_ncu_sink(NodeId node, NcuSink sink) {
    FASTNET_EXPECTS(node < graph_.node_count());
    if (ncu_sinks_.empty()) ncu_sinks_.resize(graph_.node_count());
    ncu_sinks_[node] = std::move(sink);
}

void Network::set_ncu_dispatch(NcuDispatch dispatch) { ncu_dispatch_ = std::move(dispatch); }

void Network::set_link_sink(LinkSink sink) { link_sink_ = std::move(sink); }

PortId Network::port_for_edge(NodeId node, EdgeId e) const {
    FASTNET_EXPECTS(node < graph_.node_count());
    if (e >= graph_.edge_count()) return kNoPort;
    const graph::Edge& edge = graph_.edge(e);
    if (edge.a == node) return edge_ports_[e][0];
    if (edge.b == node) return edge_ports_[e][1];
    return kNoPort;
}

EdgeId Network::edge_at_port(NodeId node, PortId p) const {
    FASTNET_EXPECTS(node < graph_.node_count());
    const std::span<const graph::IncidentEdge> inc = graph_.incident(node);
    FASTNET_EXPECTS_MSG(p >= 1 && p <= inc.size(), "not a link port");
    return inc[p - 1].edge;
}

PortId Network::port_to_neighbor(NodeId node, NodeId v) const {
    const EdgeId e = graph_.find_edge(node, v);
    return e == kNoEdge ? kNoPort : port_for_edge(node, e);
}

PortMap Network::omniscient_ports() const {
    return [this](NodeId u, NodeId v) { return port_to_neighbor(u, v); };
}

AnrHeader Network::route(std::span<const NodeId> path, CopyMode mode) const {
    return route_for_path(path, omniscient_ports(), mode);
}

Packet* Network::alloc_packet() {
    if (packet_free_.empty()) {
        packet_slabs_.push_back(std::make_unique<Packet[]>(kPacketSlabSize));
        Packet* slab = packet_slabs_.back().get();
        packet_free_.reserve(packet_free_.size() + kPacketSlabSize);
        for (std::size_t i = kPacketSlabSize; i-- > 0;) packet_free_.push_back(slab + i);
    }
    Packet* p = packet_free_.back();
    packet_free_.pop_back();
    return p;
}

void Network::release_packet(Packet* pkt) {
    if (watched()) {
        obs::MonitorEvent ev;
        ev.kind = obs::MonitorEvent::Kind::kRetire;
        ev.at = sim_.now();
        ev.lineage = pkt->lineage;
        monitors_->dispatch(ev);
    }
    pkt->route.reset();
    pkt->payload.reset();
    packet_free_.push_back(pkt);
}

void Network::note_drop(NodeId node, EdgeId e, const Packet& pkt, sim::DropReason reason) {
    if (trace_ != nullptr && trace_->enabled(sim::TraceKind::kDrop))
        trace_->record(sim_.now(), node, sim::TraceKind::kDrop,
                       {.lineage = pkt.lineage, .a = e, .b = 0,
                        .flag = static_cast<std::uint8_t>(reason)});
    if (cost::Sampling* s = metrics_.sampling()) s->drops().add(sim_.now(), 1);
    if (watched()) {
        obs::MonitorEvent ev;
        ev.kind = obs::MonitorEvent::Kind::kDrop;
        ev.at = sim_.now();
        ev.node = node;
        ev.lineage = pkt.lineage;
        ev.a = e;
        ev.b = static_cast<std::uint64_t>(reason);
        monitors_->dispatch(ev);
    }
}

std::uint64_t Network::send(NodeId from, AnrHeader header,
                            std::shared_ptr<const Payload> payload,
                            std::uint64_t parent_lineage) {
    FASTNET_EXPECTS(from < graph_.node_count());
    FASTNET_EXPECTS_MSG(!header.empty(), "empty ANR header");
    if (params_.dmax != 0) {
        FASTNET_EXPECTS_MSG(header_length(header) <= params_.dmax,
                            "ANR header exceeds dmax — path length restriction violated");
    }
    metrics_.net().injections += 1;
    metrics_.net().max_header_len =
        std::max(metrics_.net().max_header_len, header_length(header));
    metrics_.node(from).sends += 1;

    Packet* pkt = alloc_packet();
    pkt->route = Route::from_header(header);
    pkt->offset = 0;
    pkt->reverse_len = 0;
    pkt->payload = std::move(payload);
    pkt->origin = from;
    pkt->id = par_ == nullptr ? next_packet_id_++ : par_next_id(from);
    pkt->lineage = pkt->id;
    pkt->sent_at = sim_.now();
    pkt->hops = 0;
    if (trace_ != nullptr && trace_->enabled(sim::TraceKind::kSend))
        trace_->record(sim_.now(), from, sim::TraceKind::kSend,
                       {.lineage = pkt->lineage, .a = header.size(), .b = parent_lineage,
                        .flag = 0});
    if (cost::Sampling* s = metrics_.sampling()) {
        s->sends().add(sim_.now(), 1);
        s->header_len().add(header.size());
    }
    const std::uint64_t lineage = pkt->lineage;
    if (watched()) {
        obs::MonitorEvent ev;
        ev.kind = obs::MonitorEvent::Kind::kSend;
        ev.at = sim_.now();
        ev.node = from;
        ev.lineage = lineage;
        ev.a = header.size();
        ev.b = parent_lineage;
        monitors_->dispatch(ev);
    }
    // The injecting node's own switch consumes the first label immediately
    // (switching delay is folded into the per-hop cost C).
    process_at_switch(from, pkt);
    return lineage;
}

void Network::process_at_switch(NodeId node, Packet* pkt) {
    if (pkt->header_empty()) {
        metrics_.net().drops_empty_header += 1;
        note_drop(node, kNoEdge, *pkt, sim::DropReason::kEmptyHeader);
        release_packet(pkt);
        return;
    }
    const AnrLabel label = pkt->pop_label();

    const SwitchingSubsystem ss(static_cast<PortId>(graph_.degree(node)));
    const SwitchDecision d = ss.match(label);
    if (!d.matched()) {
        metrics_.net().drops_no_match += 1;
        note_drop(node, kNoEdge, *pkt, sim::DropReason::kNoMatch);
        release_packet(pkt);
        return;
    }
    if (d.to_ncu) {
        // The hardware copy: the NCU receives the remaining string. The
        // cursor is only read, never consumed — the same packet may also
        // continue over a link below.
        deliver_to_ncu(node, *pkt);
    }
    if (d.forward_port) {
        const EdgeId e = edge_at_port(node, *d.forward_port);
        transmit(node, e, pkt);
    } else {
        release_packet(pkt);
    }
}

void Network::transmit(NodeId from, EdgeId e, Packet* pkt) {
    LinkState& link = links_[e];
    if (!link.active()) {
        metrics_.net().drops_inactive_link += 1;
        note_drop(from, e, *pkt, sim::DropReason::kInactiveLink);
        release_packet(pkt);
        return;
    }
    // Parallel mode draws jitter and faults from the transmitting node's
    // private streams: the draw sequence then depends only on that node's
    // (shard-invariant) execution order, never on global call order.
    Rng& delay_rng = par_ == nullptr ? rng_ : par_->node_rng[from];
    Rng& fault_rng = par_ == nullptr ? fault_rng_ : par_->node_fault_rng[from];
    // Injected loss: the frame is corrupted beyond the data-link CRC and
    // never arrives. Drawn before the delay draw from a dedicated stream,
    // so fault-free configurations keep byte-identical schedules.
    if (config_.loss_ppm > 0 && fault_rng.below(1'000'000) < config_.loss_ppm) {
        metrics_.net().drops_injected += 1;
        note_drop(from, e, *pkt, sim::DropReason::kInjectedLoss);
        release_packet(pkt);
        return;
    }
    const graph::Edge& edge = graph_.edge(e);
    const NodeId to = edge.other(from);
    const int direction = (from == edge.a) ? 0 : 1;

    Tick delay = params_.hop_delay;
    if (config_.hop_delay_min >= 0 && params_.hop_delay > config_.hop_delay_min)
        delay = delay_rng.range(config_.hop_delay_min, params_.hop_delay);
    Tick arrival = link.fifo_arrival(direction, sim_.now() + delay);
    if (config_.link_spacing > 0)
        arrival = link.spaced_arrival(direction, arrival, config_.link_spacing);
    const std::uint64_t epoch = link.epoch();
    // Source-routing overhead on the wire: the remaining header rides
    // this hop.
    metrics_.net().header_bits +=
        static_cast<std::uint64_t>(pkt->remaining_len()) * label_bits_;
    pkt->hop_sent_at = sim_.now();
    if (cost::Sampling* s = metrics_.sampling()) {
        // Hardware (C) budget, attributed to the node whose send put the
        // packet on the wire; the wait includes FIFO/spacing queueing.
        s->node(pkt->origin).hw_time.add(sim_.now(),
                                         static_cast<double>(arrival - sim_.now()));
    }

    // 32-byte capture — fits sim::InlineFn's inline storage, so the
    // steady-state hop schedules without touching the allocator. In
    // parallel mode a boundary-crossing arrival goes to the coordinator's
    // outbox instead; the local cursor is released after the dup block
    // below is done reading it.
    bool retire_pkt = false;
    if (par_ == nullptr)
        sim_.at(arrival, [this, to, e, epoch, pkt] { arrive(to, e, epoch, pkt); });
    else
        retire_pkt = par_dispatch_arrival(from, arrival, to, e, epoch, pkt);

    // Injected duplication: a spurious link-layer retransmit. The copy is
    // a second cursor over the same route blob (both copies traverse the
    // identical remaining path, so their write-once reverse tracks write
    // identical values) and joins the same FIFO behind the original,
    // stamped with the same epoch — a flap kills both.
    if (config_.dup_ppm > 0 && fault_rng.below(1'000'000) < config_.dup_ppm) {
        Packet* dup = alloc_packet();
        dup->route = pkt->route;
        dup->offset = pkt->offset;
        dup->reverse_len = pkt->reverse_len;
        dup->payload = pkt->payload;
        dup->origin = pkt->origin;
        dup->id = par_ == nullptr ? next_packet_id_++ : par_next_id(from);
        dup->lineage = pkt->lineage;  // the duplicate stays causally traceable
        dup->sent_at = pkt->sent_at;
        dup->hop_sent_at = sim_.now();
        dup->hops = pkt->hops;
        metrics_.net().dup_copies += 1;
        metrics_.net().header_bits +=
            static_cast<std::uint64_t>(dup->remaining_len()) * label_bits_;
        if (trace_ != nullptr && trace_->enabled(sim::TraceKind::kDup))
            trace_->record(sim_.now(), from, sim::TraceKind::kDup,
                           {.lineage = dup->lineage, .a = e, .b = dup->id, .flag = 0});
        if (watched()) {
            obs::MonitorEvent ev;
            ev.kind = obs::MonitorEvent::Kind::kDup;
            ev.at = sim_.now();
            ev.node = from;
            ev.lineage = dup->lineage;
            ev.a = e;
            ev.b = dup->id;
            monitors_->dispatch(ev);
        }
        Tick dup_arrival = link.fifo_arrival(direction, arrival + params_.hop_delay);
        if (config_.link_spacing > 0)
            dup_arrival = link.spaced_arrival(direction, dup_arrival, config_.link_spacing);
        if (par_ == nullptr)
            sim_.at(dup_arrival, [this, to, e, epoch, dup] { arrive(to, e, epoch, dup); });
        else if (par_dispatch_arrival(from, dup_arrival, to, e, epoch, dup))
            release_packet(dup);
    }
    if (retire_pkt) release_packet(pkt);
}

void Network::arrive(NodeId at, EdgeId e, std::uint64_t epoch, Packet* pkt) {
    const LinkState& link = links_[e];
    if (!link.active() || link.epoch() != epoch) {
        // The link failed (or flapped) while the packet was in flight.
        metrics_.net().drops_inactive_link += 1;
        note_drop(at, e, *pkt, sim::DropReason::kStaleEpoch);
        release_packet(pkt);
        return;
    }
    pkt->hops += 1;
    metrics_.net().hops += 1;
    if (trace_ != nullptr && trace_->enabled(sim::TraceKind::kHop))
        trace_->record(sim_.now(), at, sim::TraceKind::kHop,
                       {.lineage = pkt->lineage, .a = e, .b = pkt->hops,
                        .c = static_cast<std::uint64_t>(pkt->hop_sent_at), .flag = 0});
    if (cost::Sampling* s = metrics_.sampling()) {
        s->hops().add(sim_.now(), 1);
        s->hop_latency().add(static_cast<std::uint64_t>(sim_.now() - pkt->hop_sent_at));
    }
    if (watched()) {
        obs::MonitorEvent ev;
        ev.kind = obs::MonitorEvent::Kind::kHop;
        ev.at = sim_.now();
        ev.node = at;
        ev.lineage = pkt->lineage;
        ev.a = e;
        ev.b = pkt->hops;
        monitors_->dispatch(ev);
    }
    // Accumulate reverse-path information (Section 2 grants the receiver
    // the ability to reply; we realize it as per-hop reverse labels on
    // the route blob's write-once track).
    const graph::Edge& edge = graph_.edge(e);
    const PortId back = edge_ports_[e][edge.a == at ? 0 : 1];
    pkt->route.record_reverse(pkt->reverse_len, AnrLabel::normal(back));
    pkt->reverse_len += 1;
    process_at_switch(at, pkt);
}

void Network::deliver_to_ncu(NodeId node, const Packet& pkt) {
    metrics_.net().ncu_deliveries += 1;
    const NcuSink* sink =
        node < ncu_sinks_.size() && ncu_sinks_[node] ? &ncu_sinks_[node] : nullptr;
    FASTNET_EXPECTS_MSG(sink != nullptr || ncu_dispatch_ != nullptr,
                        "no NCU sink registered");
    Delivery d;
    d.at = node;
    // Materialize the cursor into plain vectors — the one place the
    // zero-copy representation crosses back into protocol-facing types.
    d.remaining.reserve(pkt.remaining_len());
    for (std::uint32_t i = pkt.offset; i < pkt.route.size(); ++i)
        d.remaining.push_back(pkt.route.label(i));
    // Reverse labels were collected in traversal order; flip them and
    // terminate at the origin's NCU.
    d.reverse.reserve(pkt.reverse_len + 1);
    for (std::uint32_t i = pkt.reverse_len; i-- > 0;)
        d.reverse.push_back(pkt.route.reverse_label(i));
    d.reverse.push_back(AnrLabel::normal(kNcuPort));
    d.payload = pkt.payload;
    d.origin = pkt.origin;
    d.lineage = pkt.lineage;
    d.sent_at = pkt.sent_at;
    d.hops = pkt.hops;
    if (cost::Sampling* s = metrics_.sampling())
        s->delivery_latency().add(static_cast<std::uint64_t>(sim_.now() - pkt.sent_at));
    if (watched()) {
        obs::MonitorEvent ev;
        ev.kind = obs::MonitorEvent::Kind::kDeliver;
        ev.at = sim_.now();
        ev.node = node;
        ev.lineage = pkt.lineage;
        ev.a = pkt.hops;
        ev.b = static_cast<std::uint64_t>(pkt.sent_at);
        monitors_->dispatch(ev);
    }
    if (sink != nullptr)
        (*sink)(d);
    else
        ncu_dispatch_(node, d);
}

void Network::set_link_active(EdgeId e, bool active) {
    FASTNET_EXPECTS(e < links_.size());
    if (!links_[e].set_active(active)) return;
    const std::uint64_t epoch = links_[e].epoch();
    const graph::Edge& edge = graph_.edge(e);
    for (NodeId endpoint : {edge.a, edge.b}) {
        if (par_ != nullptr) {
            // Every mirror replays this draw (keeping ctl_pri_ in
            // lockstep) but only the endpoint's own shard schedules the
            // notification — the priority is therefore the same whichever
            // shard the endpoint landed on.
            const std::uint64_t pri = par_ctl_draw();
            if (!par_local(endpoint)) continue;
            sim_.at_keyed(sim_.now() + config_.detection_delay, pri,
                          [this, endpoint, e, epoch, active]() {
                              if (links_[e].epoch() != epoch) return;
                              if (link_sink_) link_sink_(endpoint, e, active);
                          });
            continue;
        }
        sim_.after(config_.detection_delay, [this, endpoint, e, epoch, active]() {
            // Suppress stale notifications if the link flapped again before
            // detection completed (the NCU only learns states that persist).
            if (links_[e].epoch() != epoch) return;
            if (link_sink_) link_sink_(endpoint, e, active);
        });
    }
}

sim::EventId Network::schedule_at(NodeId ctx, Tick when, sim::InlineFn fn) {
    if (par_ == nullptr) return sim_.at(when, std::move(fn));
    FASTNET_EXPECTS_MSG(par_local(ctx), "scheduling context not on this shard");
    return sim_.at_keyed(when, par_draw(ctx), std::move(fn));
}

sim::EventId Network::schedule_after(NodeId ctx, Tick delay, sim::InlineFn fn) {
    FASTNET_EXPECTS(delay >= 0);
    return schedule_at(ctx, sim_.now() + delay, std::move(fn));
}

void Network::bind_parallel(ParallelHooks hooks) {
    FASTNET_EXPECTS_MSG(next_packet_id_ == 1 && sim_.idle(),
                        "bind_parallel must precede any traffic");
    FASTNET_EXPECTS(hooks.node_shard != nullptr && hooks.node_rng != nullptr &&
                    hooks.node_fault_rng != nullptr && hooks.node_send_seq != nullptr &&
                    hooks.node_pri != nullptr && hooks.emit_remote != nullptr);
    par_ = std::make_unique<ParallelHooks>(std::move(hooks));
}

std::uint64_t Network::par_draw(NodeId ctx) {
    std::uint64_t& c = par_->node_pri[ctx];
    FASTNET_EXPECTS_MSG(c < (1ULL << par_->pri_counter_bits),
                        "per-node priority counter exhausted");
    return ((static_cast<std::uint64_t>(ctx) + 1) << par_->pri_counter_bits) | c++;
}

std::uint64_t Network::par_ctl_draw() {
    FASTNET_EXPECTS_MSG(ctl_pri_ < (1ULL << par_->pri_counter_bits),
                        "control priority counter exhausted");
    return ctl_pri_++;
}

std::uint64_t Network::par_next_id(NodeId origin) {
    std::uint64_t& seq = par_->node_send_seq[origin];
    FASTNET_EXPECTS_MSG(seq < 0xffff'ffffULL, "per-origin packet id space exhausted");
    return ((static_cast<std::uint64_t>(origin) + 1) << 32) | ++seq;
}

bool Network::par_dispatch_arrival(NodeId from, Tick arrival, NodeId to, EdgeId e,
                                   std::uint64_t epoch, Packet* pkt) {
    const std::uint64_t pri = par_draw(from);
    if (par_local(to)) {
        sim_.at_keyed(arrival, pri, [this, to, e, epoch, pkt] { arrive(to, e, epoch, pkt); });
        return false;
    }
    RemoteArrival r;
    r.at = arrival;
    r.pri = pri;
    r.to = to;
    r.edge = e;
    r.epoch = epoch;
    r.route = pkt->route.clone();
    r.offset = pkt->offset;
    r.reverse_len = pkt->reverse_len;
    r.payload = pkt->payload;
    r.origin = pkt->origin;
    r.id = pkt->id;
    r.lineage = pkt->lineage;
    r.sent_at = pkt->sent_at;
    r.hop_sent_at = pkt->hop_sent_at;
    r.hops = pkt->hops;
    par_->emit_remote(std::move(r));
    return true;
}

void Network::inject_remote(const RemoteArrival& r) {
    FASTNET_EXPECTS(par_ != nullptr && par_local(r.to));
    Packet* pkt = alloc_packet();
    pkt->route = r.route;
    pkt->offset = r.offset;
    pkt->reverse_len = r.reverse_len;
    pkt->payload = r.payload;
    pkt->origin = r.origin;
    pkt->id = r.id;
    pkt->lineage = r.lineage;
    pkt->sent_at = r.sent_at;
    pkt->hop_sent_at = r.hop_sent_at;
    pkt->hops = r.hops;
    if (watched()) {
        // Balances the sender mirror's kRetire: each shard's lineage
        // ledger sees a packet enter (+1) before its eventual retire.
        obs::MonitorEvent ev;
        ev.kind = obs::MonitorEvent::Kind::kHandoff;
        ev.at = r.at;
        ev.node = r.to;
        ev.lineage = r.lineage;
        ev.a = r.edge;
        monitors_->dispatch(ev);
    }
    const NodeId to = r.to;
    const EdgeId e = r.edge;
    const std::uint64_t epoch = r.epoch;
    sim_.at_keyed(r.at, r.pri, [this, to, e, epoch, pkt] { arrive(to, e, epoch, pkt); });
}

void Network::downed_push(NodeId u, EdgeId e, std::uint64_t epoch) {
    std::uint32_t slot;
    if (!downed_free_.empty()) {
        slot = downed_free_.back();
        downed_free_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(downed_pool_.size());
        downed_pool_.emplace_back();
    }
    downed_pool_[slot] = DownedLink{e, epoch, downed_head_[u]};
    downed_head_[u] = slot;
}

void Network::downed_take(NodeId u, std::vector<DownedLink>& out) {
    out.clear();
    for (std::uint32_t slot = downed_head_[u]; slot != kNoDowned;) {
        const std::uint32_t next = downed_pool_[slot].next;
        out.push_back(downed_pool_[slot]);
        downed_free_.push_back(slot);
        slot = next;
    }
    downed_head_[u] = kNoDowned;
    // The chain is LIFO; reverse to recover insertion order (restore
    // processing order is observable through notification scheduling).
    std::reverse(out.begin(), out.end());
}

void Network::fail_node(NodeId u) {
    FASTNET_EXPECTS(u < graph_.node_count());
    node_down_[u] = 1;
    for (const graph::IncidentEdge& ie : graph_.incident(u)) {
        // A link that is already down failed for some other reason (its
        // own failure, or the other endpoint's); this node's restore has
        // no claim on it.
        if (!links_[ie.edge].active()) continue;
        set_link_active(ie.edge, false);
        downed_push(u, ie.edge, links_[ie.edge].epoch());
    }
}

void Network::restore_node(NodeId u) {
    FASTNET_EXPECTS(u < graph_.node_count());
    if (!node_down_[u]) return;
    node_down_[u] = 0;
    std::vector<DownedLink> rec;
    downed_take(u, rec);
    for (const DownedLink& d : rec) {
        // The epoch moved on: something else failed/restored the link in
        // the meantime, so its current state is not ours to overwrite.
        if (links_[d.edge].epoch() != d.epoch) continue;
        const NodeId other = graph_.edge(d.edge).other(u);
        if (node_down_[other]) {
            // Both endpoints went down; hand the claim to the peer so the
            // link returns when the *last* failed endpoint recovers.
            downed_push(other, d.edge, d.epoch);
            continue;
        }
        set_link_active(d.edge, true);
    }
}

std::size_t Network::memory_bytes() const {
    return node_down_.capacity() * sizeof(std::uint8_t) +
           downed_head_.capacity() * sizeof(std::uint32_t) +
           downed_pool_.capacity() * sizeof(DownedLink) +
           downed_free_.capacity() * sizeof(std::uint32_t) +
           edge_ports_.capacity() * sizeof(std::array<PortId, 2>) +
           links_.capacity() * sizeof(LinkState) +
           ncu_sinks_.capacity() * sizeof(NcuSink) +
           packet_slabs_.capacity() * sizeof(std::unique_ptr<Packet[]>) +
           packet_slabs_.size() * kPacketSlabSize * sizeof(Packet) +
           packet_free_.capacity() * sizeof(Packet*);
}

}  // namespace fastnet::hw
