// The Switching Subsystem (SS): pure id-matching logic of Section 2.
//
// An SS knows only how many link ports it has. Matching a label against
// the port id sets is stateless: normal id p -> port p; copy id p -> port
// p and the NCU port; normal id 0 -> the NCU port. This tiny class is the
// entire "hardware": everything it can do is cheap (cost 0 in the
// limiting model), everything it cannot do must go through the NCU.
#pragma once

#include <optional>

#include "common/expect.hpp"
#include "hw/packet.hpp"

namespace fastnet::hw {

/// Result of matching one label at one switch.
struct SwitchDecision {
    bool to_ncu = false;                    ///< Deliver remaining packet to local NCU.
    std::optional<PortId> forward_port;     ///< Forward remaining packet over this link.
    bool matched() const { return to_ncu || forward_port.has_value(); }
};

class SwitchingSubsystem {
public:
    /// `link_ports` — number of incident links; ports are 1..link_ports.
    explicit SwitchingSubsystem(PortId link_ports) : link_ports_(link_ports) {}

    PortId link_port_count() const { return link_ports_; }

    bool valid_link_port(PortId p) const { return p >= 1 && p <= link_ports_; }

    /// Matches the label against every port's id set.
    SwitchDecision match(AnrLabel label) const {
        SwitchDecision d;
        const PortId p = label.port();
        if (label.is_copy()) {
            // Copy ids live on link ports and are all also assigned to the
            // NCU port, so a copy id fans out to the link and the NCU.
            if (valid_link_port(p)) {
                d.forward_port = p;
                d.to_ncu = true;
            }
        } else if (p == kNcuPort) {
            d.to_ncu = true;
        } else if (valid_link_port(p)) {
            d.forward_port = p;
        }
        return d;
    }

private:
    PortId link_ports_;
};

}  // namespace fastnet::hw
