#include "hw/anr.hpp"

#include "common/expect.hpp"

namespace fastnet::hw {

AnrHeader route_for_path(std::span<const NodeId> path, const PortMap& ports, CopyMode mode) {
    FASTNET_EXPECTS(path.size() >= 1);
    AnrHeader h;
    h.reserve(path.size() + 1);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const PortId p = ports(path[i], path[i + 1]);
        FASTNET_EXPECTS_MSG(p != kNoPort && p != kNcuPort, "port map lacks a hop on the path");
        const bool drop_copy_here = mode == CopyMode::kIntermediates && i > 0;
        h.push_back(drop_copy_here ? AnrLabel::copy(p) : AnrLabel::normal(p));
    }
    h.push_back(AnrLabel::normal(kNcuPort));
    return h;
}

PortMap canonical_ports(const graph::Graph& g) {
    return [&g](NodeId u, NodeId v) -> PortId {
        const auto inc = g.incident(u);
        for (PortId i = 0; i < inc.size(); ++i)
            if (inc[i].neighbor == v) return i + 1;
        return kNoPort;
    };
}

AnrHeader splice(AnrHeader a, const AnrHeader& b) {
    FASTNET_EXPECTS_MSG(!a.empty() && a.back() == AnrLabel::normal(kNcuPort),
                        "first header must terminate at an NCU");
    a.pop_back();
    a.insert(a.end(), b.begin(), b.end());
    return a;
}

}  // namespace fastnet::hw
