// Packets and ANR (Automatic Network Routing) labels — the hardware
// vocabulary of Section 2.
//
// A packet is conceptually a bit string xy: the switching subsystem (SS)
// pops the leading link id x and forwards y over every incident link
// whose id set contains x. We represent x as an AnrLabel and the sequence
// of remaining ids as an AnrHeader; the opaque payload that survives to
// the destination NCU is a shared_ptr to an immutable Payload subclass.
//
// Id scheme (one concrete instance of the paper's "normal + copy id"
// assignment): within a switch, port 0 is the NCU and ports 1..deg are
// the incident links in graph insertion order. The *normal* id of port p
// is p itself; the *copy* id of a link port p is p with the copy bit set.
// The NCU port's id set is {0} plus every copy id — exactly the paper's
// "the link to the NCU is assigned all the copy ID's of the other links",
// which is what makes selective copy fall out of plain id matching.
//
// Representation (the zero-copy fast path, see docs/PERF.md): the route
// is built ONCE at send() into an immutable refcounted blob (Route); the
// in-flight Packet is a cursor over that blob {route, offset,
// reverse_len, payload, ...}, so a hardware hop is an index increment and
// a fan-out copy is a couple of refcount bumps — the vector pop-front and
// per-hop push_back of the naive representation never happen. Protocols
// never see any of this: Delivery still materializes plain AnrHeader
// vectors at the NCU boundary.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace fastnet::hw {

/// Port index within one switching subsystem. 0 is always the NCU.
using PortId = std::uint32_t;

inline constexpr PortId kNcuPort = 0;

/// One link id in an ANR header.
class AnrLabel {
public:
    AnrLabel() = default;

    /// Normal id of a port (use kNcuPort for "deliver to NCU here").
    static AnrLabel normal(PortId port) { return AnrLabel(port); }

    /// Copy id of a link port: forwards over the link AND drops a copy at
    /// the local NCU. Not defined for the NCU port itself.
    static AnrLabel copy(PortId port) {
        FASTNET_EXPECTS_MSG(port != kNcuPort, "the NCU port has no copy id");
        return AnrLabel(port | kCopyBit);
    }

    /// Rehydrates a label from raw() — Route stores labels as raw words.
    static AnrLabel from_raw(std::uint32_t raw) { return AnrLabel(raw); }

    PortId port() const { return raw_ & ~kCopyBit; }
    bool is_copy() const { return (raw_ & kCopyBit) != 0; }

    std::uint32_t raw() const { return raw_; }

    friend bool operator==(AnrLabel a, AnrLabel b) { return a.raw_ == b.raw_; }

private:
    explicit AnrLabel(std::uint32_t raw) : raw_(raw) {}
    static constexpr std::uint32_t kCopyBit = 0x8000'0000u;
    std::uint32_t raw_ = 0;
};

/// The source route as protocols build and see it: a sequence of link ids
/// consumed front-to-back.
using AnrHeader = std::vector<AnrLabel>;

/// The in-flight representation of a route: one contiguous refcounted
/// blob holding the forward labels (immutable after construction) plus a
/// write-once reverse track the fabric fills in as the packet travels.
///
/// Blob layout: [len | forward label raws... | reverse track raws...].
/// The reverse track is safe to share between cursor copies because a
/// packet chain traverses its route linearly (the SS forwards over at
/// most one link per hop): writes are strictly append-order, and an NCU
/// copy materializes its reverse prefix before the chain moves on.
class Route {
public:
    Route() = default;

    /// Builds the blob from a header — the single allocation of a send().
    static Route from_header(const AnrHeader& h) {
        Route r;
        const auto len = static_cast<std::uint32_t>(h.size());
        r.blob_ = std::make_shared<std::uint32_t[]>(1 + 2 * static_cast<std::size_t>(len));
        r.blob_[0] = len;
        for (std::uint32_t i = 0; i < len; ++i) r.blob_[1 + i] = h[i].raw();
        return r;
    }

    explicit operator bool() const { return blob_ != nullptr; }
    std::uint32_t size() const { return blob_ == nullptr ? 0 : blob_[0]; }

    AnrLabel label(std::uint32_t i) const { return AnrLabel::from_raw(blob_[1 + i]); }

    /// Records hop i's back-label (i grows monotonically along the chain).
    void record_reverse(std::uint32_t i, AnrLabel l) { blob_[1 + size() + i] = l.raw(); }
    AnrLabel reverse_label(std::uint32_t i) const {
        return AnrLabel::from_raw(blob_[1 + size() + i]);
    }

    /// Deep copy, for the cross-shard handoff in the parallel kernel. The
    /// reverse track keeps being written after a boundary crossing — by
    /// the onward chain in the receiving shard, and by any link-layer
    /// duplicate of an earlier hop still in flight in the sending shard
    /// (re-recording the same index with the same value) — so one blob
    /// must never be visible to two shard mirrors.
    Route clone() const {
        Route r;
        if (blob_ == nullptr) return r;
        const std::size_t words = 1 + 2 * static_cast<std::size_t>(blob_[0]);
        r.blob_ = std::make_shared<std::uint32_t[]>(words);
        for (std::size_t i = 0; i < words; ++i) r.blob_[i] = blob_[i];
        return r;
    }

    void reset() { blob_.reset(); }

private:
    std::shared_ptr<std::uint32_t[]> blob_;
};

/// Base class for message payloads. Payloads are immutable once sent
/// (shared by every copy the hardware makes), mirroring how a copied
/// packet carries identical bits to every NCU on the path.
///
/// Concrete payload types should derive TypedPayload<T> (below) so that
/// payload_as<T> is a pointer compare instead of a dynamic_cast.
struct Payload {
    virtual ~Payload() = default;

    /// O(1) type tag; set by the TypedPayload<T> constructor, nullptr for
    /// legacy RTTI-only payloads.
    const void* fastnet_type_tag = nullptr;
};

/// CRTP helper: `struct Msg final : hw::TypedPayload<Msg> { ... };` gives
/// Msg a process-unique static tag so the delivery hot path never touches
/// RTTI.
template <typename T>
struct TypedPayload : Payload {
    TypedPayload() { fastnet_type_tag = tag(); }

    static const void* tag() {
        static const char unique = 0;
        return &unique;
    }
};

namespace detail {
template <typename T, typename = void>
struct allows_rtti_payload : std::false_type {};
template <typename T>
struct allows_rtti_payload<T, std::void_t<decltype(T::kRttiPayload)>>
    : std::bool_constant<T::kRttiPayload> {};
}  // namespace detail

/// A packet in flight: a cursor over a shared Route blob. Copying one is
/// two refcount bumps and a few ints — this is what makes hardware
/// fan-out cheap enough to match the paper's cost model.
struct Packet {
    Route route;                              ///< Shared route blob.
    std::uint32_t offset = 0;                 ///< Labels consumed so far.
    std::uint32_t reverse_len = 0;            ///< Reverse labels recorded so far.
    std::shared_ptr<const Payload> payload;   ///< Opaque content.
    NodeId origin = kNoNode;                  ///< Injecting node (diagnostics only).
    std::uint64_t id = 0;                     ///< Unique per in-flight copy (diagnostics).
    /// Causal lineage: assigned at injection, inherited by every
    /// hardware copy and link-layer duplicate of this packet — the key
    /// the trace toolchain (src/obs/) reconstructs causal chains by.
    std::uint64_t lineage = 0;
    Tick sent_at = 0;                         ///< Injection time (latency sampling).
    Tick hop_sent_at = 0;                     ///< Transmit time of the current hop.
    unsigned hops = 0;                        ///< Links traversed so far.

    bool header_empty() const { return offset >= route.size(); }
    std::uint32_t remaining_len() const { return route.size() - offset; }
    AnrLabel pop_label() { return route.label(offset++); }
};

/// What an NCU receives. Materialized from the packet cursor only here,
/// at the hardware/software boundary, so protocols keep seeing plain
/// vectors.
struct Delivery {
    NodeId at = kNoNode;                      ///< Node whose NCU got the packet.
    AnrHeader remaining;                      ///< Rest of the route (non-empty iff this
                                              ///< was a selective-copy drop mid-route).
    AnrHeader reverse;                        ///< Route back to the injecting NCU.
    std::shared_ptr<const Payload> payload;
    NodeId origin = kNoNode;                  ///< Diagnostics only — protocols must carry
                                              ///< sender identity in the payload.
    /// Causal lineage of the packet that produced this delivery
    /// (observability only; protocols must not branch on it).
    std::uint64_t lineage = 0;
    /// Injection time of the packet (observability only — the causal
    /// anchor of the kDeliver trace record and of latency attribution).
    Tick sent_at = 0;
    unsigned hops = 0;                        ///< Hardware hops travelled.
};

/// Convenience downcast for payloads; returns nullptr on type mismatch.
/// O(1) tag compare for TypedPayload types; types that cannot derive it
/// must opt into the RTTI fallback with
/// `static constexpr bool kRttiPayload = true;`.
template <typename T>
const T* payload_as(const Delivery& d) {
    if constexpr (std::is_base_of_v<TypedPayload<T>, T>) {
        if (d.payload != nullptr && d.payload->fastnet_type_tag == TypedPayload<T>::tag())
            return static_cast<const T*>(d.payload.get());
        return nullptr;
    } else {
        static_assert(detail::allows_rtti_payload<T>::value,
                      "payload types should derive hw::TypedPayload<T>; test-only types may "
                      "opt into dynamic_cast with `static constexpr bool kRttiPayload = true`");
        return dynamic_cast<const T*>(d.payload.get());
    }
}

}  // namespace fastnet::hw
