// Packets and ANR (Automatic Network Routing) labels — the hardware
// vocabulary of Section 2.
//
// A packet is conceptually a bit string xy: the switching subsystem (SS)
// pops the leading link id x and forwards y over every incident link
// whose id set contains x. We represent x as an AnrLabel and the sequence
// of remaining ids as an AnrHeader; the opaque payload that survives to
// the destination NCU is a shared_ptr to an immutable Payload subclass.
//
// Id scheme (one concrete instance of the paper's "normal + copy id"
// assignment): within a switch, port 0 is the NCU and ports 1..deg are
// the incident links in graph insertion order. The *normal* id of port p
// is p itself; the *copy* id of a link port p is p with the copy bit set.
// The NCU port's id set is {0} plus every copy id — exactly the paper's
// "the link to the NCU is assigned all the copy ID's of the other links",
// which is what makes selective copy fall out of plain id matching.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace fastnet::hw {

/// Port index within one switching subsystem. 0 is always the NCU.
using PortId = std::uint32_t;

inline constexpr PortId kNcuPort = 0;

/// One link id in an ANR header.
class AnrLabel {
public:
    AnrLabel() = default;

    /// Normal id of a port (use kNcuPort for "deliver to NCU here").
    static AnrLabel normal(PortId port) { return AnrLabel(port); }

    /// Copy id of a link port: forwards over the link AND drops a copy at
    /// the local NCU. Not defined for the NCU port itself.
    static AnrLabel copy(PortId port) {
        FASTNET_EXPECTS_MSG(port != kNcuPort, "the NCU port has no copy id");
        return AnrLabel(port | kCopyBit);
    }

    PortId port() const { return raw_ & ~kCopyBit; }
    bool is_copy() const { return (raw_ & kCopyBit) != 0; }

    std::uint32_t raw() const { return raw_; }

    friend bool operator==(AnrLabel a, AnrLabel b) { return a.raw_ == b.raw_; }

private:
    explicit AnrLabel(std::uint32_t raw) : raw_(raw) {}
    static constexpr std::uint32_t kCopyBit = 0x8000'0000u;
    std::uint32_t raw_ = 0;
};

/// The source route: a sequence of link ids consumed front-to-back.
using AnrHeader = std::vector<AnrLabel>;

/// Base class for message payloads. Payloads are immutable once sent
/// (shared by every copy the hardware makes), mirroring how a copied
/// packet carries identical bits to every NCU on the path.
struct Payload {
    virtual ~Payload() = default;
};

/// A packet in flight.
struct Packet {
    AnrHeader header;                         ///< Remaining route (consumed per hop).
    AnrHeader reverse;                        ///< Accumulated reverse route ending at the
                                              ///< sender's NCU (Section 2's "receiver can
                                              ///< reply" capability).
    std::shared_ptr<const Payload> payload;   ///< Opaque content.
    NodeId origin = kNoNode;                  ///< Injecting node (diagnostics only).
    std::uint64_t id = 0;                     ///< Unique per injection (diagnostics).
    unsigned hops = 0;                        ///< Links traversed so far.
};

/// What an NCU receives.
struct Delivery {
    NodeId at = kNoNode;                      ///< Node whose NCU got the packet.
    AnrHeader remaining;                      ///< Rest of the route (non-empty iff this
                                              ///< was a selective-copy drop mid-route).
    AnrHeader reverse;                        ///< Route back to the injecting NCU.
    std::shared_ptr<const Payload> payload;
    NodeId origin = kNoNode;                  ///< Diagnostics only — protocols must carry
                                              ///< sender identity in the payload.
    unsigned hops = 0;                        ///< Hardware hops travelled.
};

/// Convenience downcast for payloads; returns nullptr on type mismatch.
template <typename T>
const T* payload_as(const Delivery& d) {
    return dynamic_cast<const T*>(d.payload.get());
}

}  // namespace fastnet::hw
