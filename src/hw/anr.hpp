// ANR header construction helpers.
//
// Routes are sequences of per-switch port ids, so building one requires
// knowing, for each node on the path, which local port leads to the next
// node. Protocols learn these (node -> (neighbor -> port)) mappings from
// messages; the PortMap here is the minimal interface over that learned
// knowledge. hw::Network also exposes an omniscient builder for tests,
// benches and protocols whose knowledge assumptions cover it (e.g. the
// complete-graph setting of Section 5 where each node knows its ports).
//
// Label consumption model (matters for copy placement): label i of the
// header is popped at path[i]'s switch and routes toward path[i+1]; a
// copy id in that position therefore drops a copy at path[i]'s *own* NCU.
// Hence the first label is always a normal id (a copy there would echo
// the packet back to the sender's NCU) and the final node is reached via
// a trailing NCU id (0).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "hw/packet.hpp"

namespace fastnet::hw {

/// Answers "at node u, which port leads to neighbor v?"; must return
/// kNoPort when unknown.
using PortMap = std::function<PortId(NodeId u, NodeId v)>;

inline constexpr PortId kNoPort = ~0u;

/// Which nodes on the path should receive the packet.
enum class CopyMode {
    kNone,          ///< Pure relay; only the final NCU sees the packet.
    kIntermediates, ///< Selective copy at every interior node; the final
                    ///< node receives via the trailing NCU id. One such
                    ///< message covers a whole decomposition path of the
                    ///< Section 3 broadcast with one system call per node.
};

/// Builds the header routing a packet along `path` (node sequence, the
/// first element is the injecting node) and finally into the last node's
/// NCU. Throws ContractViolation if the port map lacks a hop.
AnrHeader route_for_path(std::span<const NodeId> path, const PortMap& ports,
                         CopyMode mode = CopyMode::kNone);

/// Concatenates two headers. The first must end at an NCU (trailing id 0);
/// the NCU id is removed so the packet continues along `b` instead — this
/// is how the election algorithm splices ANR(q,o) with the carried
/// ANR(o,i) to return to its origin.
AnrHeader splice(AnrHeader a, const AnrHeader& b);

/// Number of link ids in the header — the quantity restricted by dmax.
inline std::size_t header_length(const AnrHeader& h) { return h.size(); }

/// The canonical port assignment used by hw::Network: node u's port p
/// (p >= 1) is its (p-1)-th incident edge in graph insertion order. Any
/// component that knows the graph can therefore derive ports without
/// touching the network object. Keeps a reference to `g` — the graph
/// must outlive the returned map.
PortMap canonical_ports(const graph::Graph& g);

}  // namespace fastnet::hw
