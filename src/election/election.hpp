// The leader election algorithm of Section 4 (Cidon-Gopal-Kutten).
//
// Every node starts as the origin of its own one-node domain with an
// active candidate. An active candidate repeatedly *tours*: it travels
// to an OUT-neighbor o of its domain, then climbs the virtual tree of
// F-pointers (each climb is one direct message — one system call — that
// may cross many hardware hops), for at most PH+1 direct messages where
// PH = floor(log2 |domain|). Reaching an origin it compares levels
// L = (size, id):
//   (2.1) higher-level origin          -> return home, become inactive;
//   (2.2) lower level, local inactive  -> capture: plant F_v = ANR(v,i),
//         carry v's INOUT tree home, merge, tour again;
//   (2.3) lower level, local on tour   -> wait for the comeback, then act;
//   (2.4) lower level, someone waiting -> lower of the two visitors
//         returns home inactive.
// A candidate whose OUT set empties owns every node: it is the leader.
//
// Complexity (Theorems 4-5): exactly one leader; at most 6n direct
// messages (system calls); O(n) time. The optional announcement phase
// (telling every node the election is over) costs n-1 further messages.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cost/metrics.hpp"
#include "election/inout_tree.hpp"
#include "graph/graph.hpp"
#include "node/cluster.hpp"

namespace fastnet::elect {

/// Candidate level: compared lexicographically (size first, id breaks
/// ties), so levels of distinct candidates never compare equal.
struct Level {
    std::uint64_t size = 0;
    NodeId id = kNoNode;
    friend auto operator<=>(const Level&, const Level&) = default;
};

enum class Role { kUndecided, kLeader, kLeaderElected };

struct ElectionOptions {
    /// After winning, the leader notifies every node (n-1 extra direct
    /// messages). Disable to measure the bare 6n election cost.
    bool announce = true;
};

/// --- token payloads ---------------------------------------------------

/// A candidate on tour (or climbing the virtual tree).
struct TourToken final : hw::TypedPayload<TourToken> {
    NodeId origin = kNoNode;        ///< The candidate's origin node i.
    /// The origin's incarnation when the tour left (crash recovery: a
    /// restarted origin ignores its dead life's tokens, see
    /// Context::incarnation).
    std::uint64_t origin_inc = 0;
    Level level;                    ///< L_i at tour start.
    unsigned phase = 0;             ///< PH_i at tour start.
    unsigned hops_used = 0;         ///< Direct messages spent so far.
    NodeId entry = kNoNode;         ///< o — the OUT node the tour entered.
    hw::AnrHeader back;             ///< ANR(o, i): from o home to i.
    /// Ablation A3 bookkeeping: the header length a *naive* return route
    /// (reverse concatenation of every segment travelled) would have.
    /// The paper rejects that scheme because "the length of the latter
    /// may be more than n"; we measure by how much.
    std::size_t naive_len = 0;
};

/// A candidate returning home.
struct ReturnToken final : hw::TypedPayload<ReturnToken> {
    /// Copied from the answered TourToken: the returning candidate's
    /// incarnation. A restarted origin drops returns addressed to its
    /// previous life.
    std::uint64_t origin_inc = 0;
    bool captured = false;          ///< False: unsuccessful tour -> inactive.
    NodeId victim = kNoNode;        ///< The captured origin v.
    std::uint64_t victim_size = 0;  ///< S_v.
    InOutTree victim_tree;          ///< v's INOUT tree (carried home).
    NodeId entry = kNoNode;         ///< o — graft point for the merge.
};

/// Leader announcement.
struct LeaderToken final : hw::TypedPayload<LeaderToken> {
    NodeId leader = kNoNode;
};

/// --- the per-node protocol --------------------------------------------

class ElectionProtocol final : public node::Protocol {
public:
    const char* name() const override { return "election"; }
    explicit ElectionProtocol(ElectionOptions options = {});

    void on_start(node::Context& ctx) override;
    void on_message(node::Context& ctx, const hw::Delivery& d) override;
    std::size_t memory_bytes() const override {
        return sizeof(*this) + tree_.memory_bytes() - sizeof(tree_) +
               captures_by_phase_.capacity() * sizeof(std::uint64_t);
    }

    // ---- observation ---------------------------------------------------
    Role role() const { return role_; }
    bool is_origin() const { return !f_anr_.has_value(); }
    bool candidate_active() const { return candidate_alive_ && active_; }
    bool on_tour() const { return on_tour_; }
    std::uint64_t domain_size() const { return size_; }
    unsigned phase() const;
    NodeId known_leader() const { return known_leader_; }
    const InOutTree& inout() const { return tree_; }
    /// Highest phase this node's candidate ever reached (Lemma 6 stats).
    unsigned max_phase_reached() const { return max_phase_; }
    /// Captures performed by this node's candidate, histogrammed by the
    /// *victim domain's* phase (Lemma 6: at most n / 2^p entries at p).
    const std::vector<std::uint64_t>& captures_by_phase() const { return captures_by_phase_; }
    /// A3: longest return route actually used (INOUT-tree splice) and
    /// the length a naive reverse-concatenation would have needed.
    std::size_t max_return_len() const { return max_return_len_; }
    std::size_t max_naive_return_len() const { return max_naive_return_len_; }

private:
    void ensure_started(node::Context& ctx);
    void begin_tour(node::Context& ctx);
    void become_leader(node::Context& ctx);
    void handle_tour_token(node::Context& ctx, const TourToken& tok);
    void handle_return_token(node::Context& ctx, const ReturnToken& tok);
    void resolve_waiter(node::Context& ctx);
    void capture_me(node::Context& ctx, const TourToken& tok);
    void send_home_inactive(node::Context& ctx, const TourToken& tok);
    void gossip_leader(node::Context& ctx, const TourToken& tok);
    hw::AnrHeader route_back_to(const TourToken& tok);

    ElectionOptions options_;
    bool started_ = false;
    Role role_ = Role::kUndecided;
    NodeId known_leader_ = kNoNode;

    // Domain / candidate state (meaningful while this node is an origin).
    InOutTree tree_;
    std::uint64_t size_ = 1;
    bool candidate_alive_ = false;  ///< False once captured (domain absorbed).
    bool active_ = false;           ///< Inactive candidates stay home.
    bool on_tour_ = false;
    std::optional<TourToken> waiting_;  ///< A visitor parked here (rule 2.3).
    std::optional<hw::AnrHeader> f_anr_;  ///< F pointer: route to capturer's origin.

    unsigned max_phase_ = 0;
    std::vector<std::uint64_t> captures_by_phase_;
    std::size_t max_return_len_ = 0;
    std::size_t max_naive_return_len_ = 0;
};

/// --- harness ------------------------------------------------------------

struct ElectionOutcome {
    NodeId leader = kNoNode;
    bool unique_leader = false;      ///< Exactly one kLeader among started nodes.
    bool all_decided = false;        ///< Every node knows the outcome (announce on).
    cost::CostReport cost;
    std::uint64_t election_messages = 0;  ///< Direct messages excluding announcement.
    std::vector<std::uint64_t> captures_by_phase;  ///< Aggregated (Lemma 6).
    std::size_t max_return_len = 0;        ///< A3: actual ANR lengths used.
    std::size_t max_naive_return_len = 0;  ///< A3: naive reverse-concat lengths.
};

// ---- predicted bounds (Theorems 4-5, Lemma 6) ---------------------------
// Derived by the auditor (obs/audit.hpp) for a concrete run.

/// Theorem 5: the election spends at most 6n direct messages.
constexpr std::uint64_t theorem5_call_bound(std::uint64_t n) { return 6 * n; }

/// The optional announcement phase costs n-1 further direct messages.
constexpr std::uint64_t announce_call_bound(std::uint64_t n) {
    return n >= 1 ? n - 1 : 0;
}

/// Lemma 6: at most n / 2^p candidates ever reach phase p, so at most
/// that many captures can be performed by phase-p candidates.
constexpr std::uint64_t lemma6_capture_bound(std::uint64_t n, unsigned phase) {
    return phase >= 64 ? 0 : n >> phase;
}

/// Runs an election over `g`; `initiators` lists the spontaneously
/// starting nodes (empty = all), started at staggered times when
/// `stagger` > 0.
ElectionOutcome run_election(const graph::Graph& g, ElectionOptions options = {},
                             std::vector<NodeId> initiators = {},
                             node::ClusterConfig config = {}, Tick stagger = 0);

}  // namespace fastnet::elect
