// The INOUT tree of Section 4: the data structure a candidate's origin
// keeps about its domain.
//
// It records IN_i (domain members) and OUT_i (neighbors of members that
// are outside the domain) as one tree that is a subgraph of the network:
// every tree edge is a physical link, stored with the port ids of both
// endpoints. Routes derived from it (root->x, x->root) therefore have
// length linear in the domain size — the property the paper needs so
// that "all the ANR field lengths ... are linear in n".
#pragma once

#include <map>
#include <vector>

#include "common/types.hpp"
#include "graph/rooted_tree.hpp"
#include "hw/anr.hpp"

namespace fastnet::elect {

class InOutTree {
public:
    struct Entry {
        NodeId parent = kNoNode;                 ///< kNoNode at the root.
        hw::PortId port_from_parent = hw::kNoPort;  ///< At parent, toward node.
        hw::PortId port_to_parent = hw::kNoPort;    ///< At node, toward parent.
        bool in_domain = false;                  ///< IN (true) or OUT (false).
    };

    InOutTree() = default;
    /// Creates the singleton domain {root}.
    explicit InOutTree(NodeId root);

    NodeId root() const { return root_; }
    bool contains(NodeId u) const { return entries_.count(u) != 0; }
    bool is_in(NodeId u) const;
    bool is_out(NodeId u) const;
    const Entry& entry(NodeId u) const;

    std::size_t in_count() const { return in_count_; }
    std::size_t out_count() const { return entries_.size() - in_count_; }

    /// Smallest-id OUT node, or kNoNode when the OUT set is empty.
    /// (Deterministic choice of the paper's "arbitrary node o".)
    NodeId pick_out() const;

    /// All OUT node ids in ascending order.
    std::vector<NodeId> out_nodes() const;
    /// All IN node ids in ascending order.
    std::vector<NodeId> in_nodes() const;

    /// Adds an OUT leaf `u` attached under IN member `parent` via the
    /// physical link with the given ports. No-op if `u` is already
    /// present (IN or OUT).
    void add_out(NodeId u, NodeId parent, hw::PortId port_at_parent, hw::PortId port_at_u);

    /// ANR from the root's NCU to x's NCU along tree edges.
    hw::AnrHeader route_from_root(NodeId x) const;
    /// ANR from x's NCU back to the root's NCU along tree edges.
    hw::AnrHeader route_to_root(NodeId x) const;

    /// Tree path root -> x as node ids (diagnostics/tests).
    std::vector<NodeId> path_from_root(NodeId x) const;

    /// Absorbs `other` (a captured domain's tree, rooted at its origin):
    /// re-roots `other` at `via` (which must be IN `other` and already
    /// present in *this* as an OUT node) and grafts it there. IN beats
    /// OUT when both trees know a node. Implements the paper's
    ///   IN_i  = IN_i  u IN_v
    ///   OUT_i = OUT_i u OUT_v - IN_i
    /// "by connecting node o of IN_v to its neighbor in IN_i".
    void absorb(const InOutTree& other, NodeId via);

    /// Internal consistency (tests): parent links acyclic, IN/OUT counts
    /// coherent, OUT nodes are leaves.
    bool invariants_hold() const;

    /// The IN part as a graph::RootedTree over ids 0..capacity-1 (a
    /// spanning tree of the domain, and — since every tree edge is a
    /// physical link — a subgraph of the network). After an election the
    /// leader's domain spans its component, so this is a free spanning
    /// tree: ready-made input for the Section 3 broadcast machinery.
    graph::RootedTree to_rooted_tree(NodeId capacity) const;

    /// Logical footprint for the per-node memory ledger. Map nodes are
    /// estimated at payload + 4 words of red-black bookkeeping.
    std::size_t memory_bytes() const {
        return sizeof(*this) +
               entries_.size() * (sizeof(std::pair<const NodeId, Entry>) + 4 * sizeof(void*));
    }

private:
    NodeId root_ = kNoNode;
    std::map<NodeId, Entry> entries_;  // ordered: deterministic iteration
    std::size_t in_count_ = 0;

    std::vector<NodeId> chain_to_root(NodeId x) const;
};

}  // namespace fastnet::elect
