// Traditional leader-election baselines on a ring, accounted under the
// new measure.
//
// Both algorithms use only neighbor-to-neighbor messages, so every hop
// is a system call: the hardware's relaying power buys nothing. This is
// the Section 4 observation that "a straightforward application of the
// traditional techniques to the new model would result in system call
// complexity of Omega(n log n)":
//   * Chang-Roberts — unidirectional id race: O(n log n) expected,
//     O(n^2) worst-case messages;
//   * Hirschberg-Sinclair — doubling probes both ways: O(n log n)
//     worst-case messages.
// Termination: the winner circulates one final announcement lap
// (n messages), after which every node knows the leader.
#pragma once

#include <cstdint>

#include "cost/metrics.hpp"
#include "election/election.hpp"
#include "graph/graph.hpp"
#include "node/cluster.hpp"

namespace fastnet::elect {

/// Chang-Roberts on a directed ring (clockwise = next node id). Nodes
/// compete with a `priority` (default: the node id). Random priorities
/// give the O(n log n) expected message count; priorities sorted along
/// the ring give the 2n-1 best case, reverse-sorted the n(n+1)/2-ish
/// worst case.
class ChangRobertsProtocol final : public node::Protocol {
public:
    const char* name() const override { return "chang_roberts"; }
    explicit ChangRobertsProtocol(std::uint64_t priority) : priority_(priority) {}

    void on_start(node::Context& ctx) override;
    void on_message(node::Context& ctx, const hw::Delivery& d) override;
    std::size_t memory_bytes() const override { return sizeof(*this); }

    Role role() const { return role_; }
    NodeId known_leader() const { return known_leader_; }

private:
    void send_cw(node::Context& ctx, std::shared_ptr<const hw::Payload> payload);

    std::uint64_t priority_;
    bool started_ = false;
    bool participating_ = false;
    Role role_ = Role::kUndecided;
    NodeId known_leader_ = kNoNode;
};

/// Hirschberg-Sinclair on a bidirectional ring. As with Chang-Roberts,
/// nodes compete with a `priority`; sorted priorities are the (atypical)
/// best case, random priorities exhibit the Theta(n log n) behaviour.
class HirschbergSinclairProtocol final : public node::Protocol {
public:
    const char* name() const override { return "hirschberg_sinclair"; }
    explicit HirschbergSinclairProtocol(std::uint64_t priority) : priority_(priority) {}

    void on_start(node::Context& ctx) override;
    void on_message(node::Context& ctx, const hw::Delivery& d) override;
    std::size_t memory_bytes() const override { return sizeof(*this); }

    Role role() const { return role_; }
    NodeId known_leader() const { return known_leader_; }

private:
    void launch_phase(node::Context& ctx);
    void relay(node::Context& ctx, hw::PortId away_from, std::shared_ptr<const hw::Payload> p);

    std::uint64_t priority_;
    bool started_ = false;
    bool candidate_ = false;
    Role role_ = Role::kUndecided;
    NodeId known_leader_ = kNoNode;
    unsigned phase_ = 0;
    unsigned replies_pending_ = 0;
};

/// Runs a baseline election on a cycle of n nodes; reports like
/// run_election (election_messages excludes the final announcement lap).
/// `priority_seed` for Chang-Roberts: 0 = priorities equal node ids
/// (best case on this ring); otherwise a random permutation (average
/// case, O(n log n) expected messages).
ElectionOutcome run_chang_roberts(NodeId n, node::ClusterConfig config = {},
                                  std::uint64_t priority_seed = 0);
ElectionOutcome run_hirschberg_sinclair(NodeId n, node::ClusterConfig config = {},
                                        std::uint64_t priority_seed = 0);

}  // namespace fastnet::elect
