#include "election/election.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "graph/algorithms.hpp"

namespace fastnet::elect {

ElectionProtocol::ElectionProtocol(ElectionOptions options) : options_(options) {}

unsigned ElectionProtocol::phase() const { return floor_log2(size_); }

void ElectionProtocol::ensure_started(node::Context& ctx) {
    if (started_) return;
    started_ = true;
    tree_ = InOutTree(ctx.self());
    for (const node::LocalLink& l : ctx.links()) {
        if (!l.active) continue;
        tree_.add_out(l.neighbor, ctx.self(), l.port, l.remote_port);
    }
    size_ = 1;
    candidate_alive_ = true;
    active_ = true;
    on_tour_ = false;
}

void ElectionProtocol::on_start(node::Context& ctx) {
    if (started_) return;  // a message beat the START signal
    ensure_started(ctx);
    begin_tour(ctx);
}

void ElectionProtocol::on_message(node::Context& ctx, const hw::Delivery& d) {
    const bool fresh = !started_;
    ensure_started(ctx);
    if (const auto* tour = hw::payload_as<TourToken>(d)) {
        handle_tour_token(ctx, *tour);
        // A node woken by a visiting candidate fields its own candidate
        // too (the paper: the algorithm starts on the first message).
        // If the visit captured us this is a no-op.
        if (fresh && candidate_alive_ && active_ && !on_tour_) begin_tour(ctx);
        return;
    }
    if (const auto* ret = hw::payload_as<ReturnToken>(d)) {
        handle_return_token(ctx, *ret);
        return;
    }
    if (const auto* lead = hw::payload_as<LeaderToken>(d)) {
        known_leader_ = lead->leader;
        if (role_ != Role::kLeader) role_ = Role::kLeaderElected;
        return;
    }
    FASTNET_ENSURES_MSG(false, "unexpected payload in election");
}

hw::AnrHeader ElectionProtocol::route_back_to(const TourToken& tok) {
    // ANR(self, origin) = ANR(self, o) through our (live or frozen) INOUT
    // tree — o is IN it, by the chain invariant — spliced with the
    // carried ANR(o, origin). Both parts are linear in n.
    hw::AnrHeader h = hw::splice(tree_.route_from_root(tok.entry), tok.back);
    max_return_len_ = std::max(max_return_len_, h.size());
    // A3: a naive return would reverse-concatenate every segment the
    // tour travelled plus the original outbound route.
    max_naive_return_len_ = std::max(max_naive_return_len_, tok.naive_len + tok.back.size());
    return h;
}

void ElectionProtocol::send_home_inactive(node::Context& ctx, const TourToken& tok) {
    auto ret = std::make_shared<ReturnToken>();
    ret->origin_inc = tok.origin_inc;
    ret->captured = false;
    ctx.send(route_back_to(tok), std::move(ret));
}

void ElectionProtocol::gossip_leader(node::Context& ctx, const TourToken& tok) {
    // Crash recovery: a candidate still touring after the election ended
    // can only come from a restarted node (or a partition that healed).
    // Piggyback the outcome on the bounce so the latecomer's origin
    // learns the leader instead of staying undecided forever.
    if (known_leader_ == kNoNode || !options_.announce) return;
    auto lead = std::make_shared<LeaderToken>();
    lead->leader = known_leader_;
    ctx.send(route_back_to(tok), std::move(lead));
}

void ElectionProtocol::capture_me(node::Context& ctx, const TourToken& tok) {
    FASTNET_ENSURES_MSG(!waiting_.has_value(), "capture with a parked visitor");
    f_anr_ = route_back_to(tok);
    candidate_alive_ = false;
    active_ = false;
    on_tour_ = false;
    auto ret = std::make_shared<ReturnToken>();
    ret->origin_inc = tok.origin_inc;
    ret->captured = true;
    ret->victim = ctx.self();
    ret->victim_size = size_;
    ret->victim_tree = tree_;  // carried home; we keep our frozen copy
    ret->entry = tok.entry;
    ctx.send(*f_anr_, std::move(ret));
}

void ElectionProtocol::handle_tour_token(node::Context& ctx, const TourToken& tok) {
    if (!is_origin()) {
        // Rule (1): a limited-length climb up the virtual tree.
        if (tok.hops_used > tok.phase) {
            // Crash recovery guard: a token that entered through a domain
            // we no longer remember (our pre-capture tree died with a
            // restart) cannot be routed home. Dropping it costs the stale
            // candidate liveness, never safety.
            if (!tree_.contains(tok.entry)) return;
            send_home_inactive(ctx, tok);
            gossip_leader(ctx, tok);
            return;
        }
        TourToken fwd = tok;
        fwd.hops_used += 1;
        fwd.naive_len += f_anr_->size();  // A3: what reverse-concat would add
        ctx.send(*f_anr_, std::make_shared<TourToken>(fwd));
        return;
    }

    if (tok.origin == ctx.self()) {
        // Our own token walked home. Impossible in a crash-free run (a
        // candidate's climb never cycles), but after a crash-restart our
        // fresh 1-node domain can tour straight into the wreckage of our
        // previous life — whose F-pointers lead right back to us. Tokens
        // of the dead incarnation are simply dropped; our current one is
        // taken as an unsuccessful tour (the territory it found is stale
        // state pointing at ourselves, not a capturable domain).
        if (tok.origin_inc == ctx.incarnation() && on_tour_) {
            on_tour_ = false;
            active_ = false;
            resolve_waiter(ctx);
        }
        return;
    }
    // Crash recovery guard: every response below routes home through
    // tok.entry, which the chain invariant puts in our tree — unless the
    // token predates a crash that wiped that tree. Unroutable: drop.
    if (!tree_.contains(tok.entry)) return;
    const Level mine{size_, ctx.self()};
    if (mine > tok.level) {
        // Rule (2.1).
        send_home_inactive(ctx, tok);
        gossip_leader(ctx, tok);
        return;
    }
    // mine < tok.level.
    if (!on_tour_) {
        // Rule (2.2): local candidate is home (inactive, or fresh and not
        // yet toured) — it is captured.
        capture_me(ctx, tok);
        return;
    }
    if (!waiting_) {
        // Rule (2.3): park the visitor until our candidate's comeback.
        waiting_ = tok;
        return;
    }
    // Rule (2.4): two visitors — the lower-level one goes home inactive.
    if (waiting_->level < tok.level) {
        send_home_inactive(ctx, *waiting_);
        waiting_ = tok;
    } else {
        send_home_inactive(ctx, tok);
    }
}

void ElectionProtocol::handle_return_token(node::Context& ctx, const ReturnToken& tok) {
    // In a crash-free run a return token always finds its origin on tour.
    // With crash recovery, answers addressed to a dead incarnation (or to
    // a node that was since captured) straggle in — drop them; acting on
    // one would resurrect the dead candidate's state.
    if (!is_origin() || !on_tour_ || tok.origin_inc != ctx.incarnation()) return;
    on_tour_ = false;
    if (tok.captured) {
        // Lemma 6 statistics: a capture retires one domain; histogram by
        // the *victim's* phase (at most n / 2^p domains ever reach phase
        // p, since a node belongs to at most one domain per phase).
        const unsigned victim_phase = floor_log2(tok.victim_size);
        if (captures_by_phase_.size() <= victim_phase)
            captures_by_phase_.resize(victim_phase + 1, 0);
        captures_by_phase_[victim_phase] += 1;
        tree_.absorb(tok.victim_tree, tok.entry);
        size_ += tok.victim_size;
        max_phase_ = std::max(max_phase_, phase());
    } else {
        active_ = false;
    }
    resolve_waiter(ctx);
    if (candidate_alive_ && active_ && !on_tour_) begin_tour(ctx);
}

void ElectionProtocol::resolve_waiter(node::Context& ctx) {
    if (!waiting_) return;
    const TourToken j = *waiting_;
    waiting_.reset();
    const Level mine{size_, ctx.self()};
    if (mine > j.level) {
        // Analog of (2.1): the visitor loses against our (possibly just
        // grown) domain.
        send_home_inactive(ctx, j);
        return;
    }
    // Analog of (2.2): the visitor captures us — even if our candidate is
    // still nominally active, the comeback synchronization point is where
    // the comparison lands (rule 2.3).
    capture_me(ctx, j);
}

void ElectionProtocol::begin_tour(node::Context& ctx) {
    FASTNET_EXPECTS(is_origin() && candidate_alive_ && active_ && !on_tour_);
    const NodeId o = tree_.pick_out();
    if (o == kNoNode) {
        become_leader(ctx);
        return;
    }
    max_phase_ = std::max(max_phase_, phase());
    auto tok = std::make_shared<TourToken>();
    tok->origin = ctx.self();
    tok->origin_inc = ctx.incarnation();
    tok->level = Level{size_, ctx.self()};
    tok->phase = phase();
    tok->hops_used = 1;
    tok->entry = o;
    tok->back = tree_.route_to_root(o);
    tok->naive_len = tok->back.size();
    on_tour_ = true;
    ctx.send(tree_.route_from_root(o), std::move(tok));
}

void ElectionProtocol::become_leader(node::Context& ctx) {
    role_ = Role::kLeader;
    known_leader_ = ctx.self();
    active_ = false;
    if (!options_.announce) return;
    auto tok = std::make_shared<LeaderToken>();
    tok->leader = ctx.self();
    for (NodeId u : tree_.in_nodes()) {
        if (u == ctx.self()) continue;
        ctx.send(tree_.route_from_root(u), tok);
    }
}

ElectionOutcome run_election(const graph::Graph& g, ElectionOptions options,
                             std::vector<NodeId> initiators, node::ClusterConfig config,
                             Tick stagger) {
    node::Cluster cluster(g, [options](NodeId) {
        return std::make_unique<ElectionProtocol>(options);
    }, config);
    if (initiators.empty())
        for (NodeId u = 0; u < g.node_count(); ++u) initiators.push_back(u);
    Tick at = 0;
    for (NodeId u : initiators) {
        cluster.start(u, at);
        at += stagger;
    }
    cluster.run();

    ElectionOutcome out;
    std::uint64_t leaders = 0;
    std::uint64_t leader_domain = 0;
    out.all_decided = true;
    for (NodeId u = 0; u < g.node_count(); ++u) {
        const auto& p = cluster.protocol_as<ElectionProtocol>(u);
        if (p.role() == Role::kLeader) {
            ++leaders;
            out.leader = u;
            leader_domain = p.domain_size();
        }
        if (p.role() == Role::kUndecided) out.all_decided = false;
        const auto& caps = p.captures_by_phase();
        if (out.captures_by_phase.size() < caps.size())
            out.captures_by_phase.resize(caps.size(), 0);
        for (std::size_t i = 0; i < caps.size(); ++i) out.captures_by_phase[i] += caps[i];
        out.max_return_len = std::max(out.max_return_len, p.max_return_len());
        out.max_naive_return_len = std::max(out.max_naive_return_len, p.max_naive_return_len());
    }
    out.unique_leader = leaders == 1;
    out.cost = cost::snapshot(cluster.metrics(), cluster.simulator().now());
    const std::uint64_t announce_msgs =
        (options.announce && leaders >= 1) ? leader_domain - 1 : 0;
    out.election_messages = out.cost.direct_messages - announce_msgs;
    return out;
}

}  // namespace fastnet::elect
