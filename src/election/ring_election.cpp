#include "election/ring_election.hpp"

#include "common/expect.hpp"
#include "graph/generators.hpp"

namespace fastnet::elect {
namespace {

struct CrToken final : hw::TypedPayload<CrToken> {
    NodeId origin = kNoNode;
    std::uint64_t priority = 0;
};
struct CrWinner final : hw::TypedPayload<CrWinner> {
    NodeId leader = kNoNode;
};
struct HsProbe final : hw::TypedPayload<HsProbe> {
    NodeId origin = kNoNode;
    std::uint64_t priority = 0;
    unsigned phase = 0;
    unsigned ttl = 0;
};
struct HsReply final : hw::TypedPayload<HsReply> {
    NodeId origin = kNoNode;
    unsigned phase = 0;
};
struct HsWinner final : hw::TypedPayload<HsWinner> {
    NodeId leader = kNoNode;
};

/// Port at `ctx.self()` leading to neighbor `v`.
hw::PortId port_to(node::Context& ctx, NodeId v) {
    for (const node::LocalLink& l : ctx.links())
        if (l.neighbor == v) return l.port;
    FASTNET_ENSURES_MSG(false, "ring neighbor missing");
    return hw::kNoPort;
}

hw::AnrHeader one_hop(hw::PortId p) {
    return {hw::AnrLabel::normal(p), hw::AnrLabel::normal(hw::kNcuPort)};
}

/// On a two-regular node, the port that is not `arrival`.
hw::PortId other_port(node::Context& ctx, hw::PortId arrival) {
    for (const node::LocalLink& l : ctx.links())
        if (l.port != arrival) return l.port;
    FASTNET_ENSURES_MSG(false, "ring node must have two links");
    return hw::kNoPort;
}

hw::PortId arrival_port(const hw::Delivery& d) {
    FASTNET_EXPECTS(!d.reverse.empty());
    return d.reverse.front().port();
}

}  // namespace

// ---- Chang-Roberts ----------------------------------------------------

void ChangRobertsProtocol::send_cw(node::Context& ctx,
                                   std::shared_ptr<const hw::Payload> payload) {
    // Clockwise neighbor = (self + 1) mod ring size; the ring size is not
    // known locally, but the neighbor set is {self-1, self+1} (mod n), so
    // "the neighbor that is not self-1" identifies clockwise. With two
    // neighbors, pick the one that equals self+1 modulo anything: it is
    // the one different from self-1; handle the wrap nodes by explicit
    // comparison.
    const auto links = ctx.links();
    FASTNET_EXPECTS(links.size() == 2);
    const NodeId a = links[0].neighbor, b = links[1].neighbor;
    // Exactly one of a, b is self+1 (mod n): it is the smaller one unless
    // we are the wrap node (then it is node 0).
    NodeId cw;
    if (a == ctx.self() + 1 || b == ctx.self() + 1)
        cw = (a == ctx.self() + 1) ? a : b;
    else
        cw = std::min(a, b);  // wrap: neighbors are n-2(or similar) and 0
    ctx.send(one_hop(port_to(ctx, cw)), std::move(payload));
}

void ChangRobertsProtocol::on_start(node::Context& ctx) {
    if (started_) return;
    started_ = true;
    participating_ = true;
    auto tok = std::make_shared<CrToken>();
    tok->origin = ctx.self();
    tok->priority = priority_;
    send_cw(ctx, std::move(tok));
}

void ChangRobertsProtocol::on_message(node::Context& ctx, const hw::Delivery& d) {
    started_ = true;
    if (const auto* tok = hw::payload_as<CrToken>(d)) {
        if (tok->origin == ctx.self()) {
            role_ = Role::kLeader;
            known_leader_ = ctx.self();
            auto win = std::make_shared<CrWinner>();
            win->leader = ctx.self();
            send_cw(ctx, std::move(win));
            return;
        }
        if (tok->priority > priority_) {
            send_cw(ctx, std::make_shared<CrToken>(*tok));
        } else if (!participating_) {
            participating_ = true;
            auto mine = std::make_shared<CrToken>();
            mine->origin = ctx.self();
            mine->priority = priority_;
            send_cw(ctx, std::move(mine));
        }
        // else: swallow the weaker token.
        return;
    }
    if (const auto* win = hw::payload_as<CrWinner>(d)) {
        known_leader_ = win->leader;
        if (win->leader == ctx.self()) return;  // announcement lap complete
        role_ = Role::kLeaderElected;
        send_cw(ctx, std::make_shared<CrWinner>(*win));
        return;
    }
    FASTNET_ENSURES_MSG(false, "unexpected payload in Chang-Roberts");
}

// ---- Hirschberg-Sinclair ------------------------------------------------

void HirschbergSinclairProtocol::launch_phase(node::Context& ctx) {
    replies_pending_ = 2;
    auto probe = std::make_shared<HsProbe>();
    probe->origin = ctx.self();
    probe->priority = priority_;
    probe->phase = phase_;
    probe->ttl = 1u << phase_;
    const auto links = ctx.links();
    FASTNET_EXPECTS(links.size() == 2);
    ctx.send(one_hop(links[0].port), probe);
    ctx.send(one_hop(links[1].port), probe);
}

void HirschbergSinclairProtocol::relay(node::Context& ctx, hw::PortId away_from,
                                       std::shared_ptr<const hw::Payload> p) {
    ctx.send(one_hop(other_port(ctx, away_from)), std::move(p));
}

void HirschbergSinclairProtocol::on_start(node::Context& ctx) {
    if (started_) return;
    started_ = true;
    candidate_ = true;
    phase_ = 0;
    launch_phase(ctx);
}

void HirschbergSinclairProtocol::on_message(node::Context& ctx, const hw::Delivery& d) {
    if (!started_) {
        // Late riser: field a candidacy as well (keeps the algorithm
        // correct when only a subset starts spontaneously).
        started_ = true;
        candidate_ = true;
        phase_ = 0;
        launch_phase(ctx);
    }
    const hw::PortId in = arrival_port(d);
    if (const auto* probe = hw::payload_as<HsProbe>(d)) {
        if (probe->origin == ctx.self()) {
            // Circumnavigated: we win.
            role_ = Role::kLeader;
            known_leader_ = ctx.self();
            auto win = std::make_shared<HsWinner>();
            win->leader = ctx.self();
            relay(ctx, in, std::move(win));
            return;
        }
        if (probe->priority < priority_) return;  // our priority dominates: swallow
        if (probe->ttl > 1) {
            auto fwd = std::make_shared<HsProbe>(*probe);
            fwd->ttl -= 1;
            relay(ctx, in, std::move(fwd));
        } else {
            // Turnaround point: confirm the probe survived its radius.
            auto rep = std::make_shared<HsReply>();
            rep->origin = probe->origin;
            rep->phase = probe->phase;
            ctx.send(one_hop(in), std::move(rep));
        }
        return;
    }
    if (const auto* rep = hw::payload_as<HsReply>(d)) {
        if (rep->origin != ctx.self()) {
            relay(ctx, in, std::make_shared<HsReply>(*rep));
            return;
        }
        if (rep->phase != phase_ || replies_pending_ == 0) return;  // stale
        if (--replies_pending_ == 0) {
            phase_ += 1;
            launch_phase(ctx);
        }
        return;
    }
    if (const auto* win = hw::payload_as<HsWinner>(d)) {
        known_leader_ = win->leader;
        if (win->leader == ctx.self()) return;
        role_ = Role::kLeaderElected;
        relay(ctx, in, std::make_shared<HsWinner>(*win));
        return;
    }
    FASTNET_ENSURES_MSG(false, "unexpected payload in Hirschberg-Sinclair");
}

// ---- harnesses ----------------------------------------------------------

namespace {

template <typename Protocol>
ElectionOutcome run_ring(NodeId n, node::ClusterConfig config,
                         node::ProtocolFactory factory) {
    FASTNET_EXPECTS(n >= 3);
    node::Cluster cluster(graph::make_cycle(n), std::move(factory), config);
    cluster.start_all(0);
    cluster.run();
    ElectionOutcome out;
    std::uint64_t leaders = 0;
    out.all_decided = true;
    for (NodeId u = 0; u < n; ++u) {
        const auto& p = cluster.template protocol_as<Protocol>(u);
        if (p.role() == Role::kLeader) {
            ++leaders;
            out.leader = u;
        }
        if (p.role() == Role::kUndecided) out.all_decided = false;
    }
    out.unique_leader = leaders == 1;
    out.cost = cost::snapshot(cluster.metrics(), cluster.simulator().now());
    // The announcement lap is exactly n messages on the ring.
    out.election_messages = out.cost.direct_messages - n;
    return out;
}

}  // namespace

ElectionOutcome run_chang_roberts(NodeId n, node::ClusterConfig config,
                                  std::uint64_t priority_seed) {
    std::vector<std::uint64_t> priorities(n);
    for (NodeId u = 0; u < n; ++u) priorities[u] = u;
    if (priority_seed != 0) {
        Rng rng(priority_seed);
        rng.shuffle(priorities);
    }
    return run_ring<ChangRobertsProtocol>(n, config, [priorities](NodeId u) {
        return std::make_unique<ChangRobertsProtocol>(priorities[u]);
    });
}

ElectionOutcome run_hirschberg_sinclair(NodeId n, node::ClusterConfig config,
                                         std::uint64_t priority_seed) {
    std::vector<std::uint64_t> priorities(n);
    for (NodeId u = 0; u < n; ++u) priorities[u] = u;
    if (priority_seed != 0) {
        Rng rng(priority_seed ^ 0xabcdefULL);
        rng.shuffle(priorities);
    }
    return run_ring<HirschbergSinclairProtocol>(n, config, [priorities](NodeId u) {
        return std::make_unique<HirschbergSinclairProtocol>(priorities[u]);
    });
}

}  // namespace fastnet::elect
