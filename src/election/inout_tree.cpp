#include "election/inout_tree.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace fastnet::elect {

InOutTree::InOutTree(NodeId root) : root_(root) {
    Entry e;
    e.in_domain = true;
    entries_.emplace(root, e);
    in_count_ = 1;
}

bool InOutTree::is_in(NodeId u) const {
    const auto it = entries_.find(u);
    return it != entries_.end() && it->second.in_domain;
}

bool InOutTree::is_out(NodeId u) const {
    const auto it = entries_.find(u);
    return it != entries_.end() && !it->second.in_domain;
}

const InOutTree::Entry& InOutTree::entry(NodeId u) const {
    const auto it = entries_.find(u);
    FASTNET_EXPECTS_MSG(it != entries_.end(), "node not in INOUT tree");
    return it->second;
}

NodeId InOutTree::pick_out() const {
    for (const auto& [id, e] : entries_)
        if (!e.in_domain) return id;
    return kNoNode;
}

std::vector<NodeId> InOutTree::out_nodes() const {
    std::vector<NodeId> out;
    for (const auto& [id, e] : entries_)
        if (!e.in_domain) out.push_back(id);
    return out;
}

std::vector<NodeId> InOutTree::in_nodes() const {
    std::vector<NodeId> in;
    for (const auto& [id, e] : entries_)
        if (e.in_domain) in.push_back(id);
    return in;
}

void InOutTree::add_out(NodeId u, NodeId parent, hw::PortId port_at_parent,
                        hw::PortId port_at_u) {
    if (entries_.count(u)) return;
    FASTNET_EXPECTS_MSG(is_in(parent), "OUT node must hang under an IN member");
    Entry e;
    e.parent = parent;
    e.port_from_parent = port_at_parent;
    e.port_to_parent = port_at_u;
    e.in_domain = false;
    entries_.emplace(u, e);
}

std::vector<NodeId> InOutTree::chain_to_root(NodeId x) const {
    std::vector<NodeId> chain;
    NodeId v = x;
    for (;;) {
        chain.push_back(v);
        FASTNET_ENSURES_MSG(chain.size() <= entries_.size(), "cycle in INOUT tree");
        if (v == root_) break;
        v = entry(v).parent;
    }
    return chain;
}

hw::AnrHeader InOutTree::route_from_root(NodeId x) const {
    std::vector<NodeId> chain = chain_to_root(x);  // x .. root
    hw::AnrHeader h;
    h.reserve(chain.size());
    // Walk root -> x: hop into chain[k] uses chain[k]'s port_from_parent.
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        if (*it == root_) continue;
        h.push_back(hw::AnrLabel::normal(entry(*it).port_from_parent));
    }
    h.push_back(hw::AnrLabel::normal(hw::kNcuPort));
    return h;
}

hw::AnrHeader InOutTree::route_to_root(NodeId x) const {
    const std::vector<NodeId> chain = chain_to_root(x);  // x .. root
    hw::AnrHeader h;
    h.reserve(chain.size());
    for (NodeId v : chain) {
        if (v == root_) break;
        h.push_back(hw::AnrLabel::normal(entry(v).port_to_parent));
    }
    h.push_back(hw::AnrLabel::normal(hw::kNcuPort));
    return h;
}

std::vector<NodeId> InOutTree::path_from_root(NodeId x) const {
    std::vector<NodeId> chain = chain_to_root(x);
    std::reverse(chain.begin(), chain.end());
    return chain;
}

void InOutTree::absorb(const InOutTree& other, NodeId via) {
    FASTNET_EXPECTS_MSG(is_out(via), "graft point must currently be an OUT node here");
    FASTNET_EXPECTS_MSG(other.is_in(via), "graft point must be IN the captured domain");

    // Re-root `other` at `via` conceptually: new parent pointers along the
    // via -> other.root chain are the old child->parent edges flipped.
    const std::vector<NodeId> flip = other.chain_to_root(via);  // via .. other.root

    // The graft point becomes a domain member but keeps its attachment in
    // *this* tree ("connecting node o of IN_v to its neighbor in IN_i").
    entries_[via].in_domain = true;
    ++in_count_;

    // Insert the re-rooted `other` nodes, walking outward from `via` so
    // every node's new parent is already present. First the flipped chain:
    for (std::size_t k = 0; k + 1 < flip.size(); ++k) {
        const NodeId child = flip[k];        // closer to via
        const NodeId node = flip[k + 1];     // its old parent, now its child
        const Entry& old_edge = other.entry(child);  // edge child<->node
        Entry e;
        e.parent = child;
        e.port_from_parent = old_edge.port_to_parent;  // at child, toward node
        e.port_to_parent = old_edge.port_from_parent;  // at node, toward child
        e.in_domain = true;  // the whole chain consists of other-IN members
        const auto it = entries_.find(node);
        if (it == entries_.end()) {
            entries_.emplace(node, e);
            ++in_count_;
        } else {
            FASTNET_ENSURES_MSG(!it->second.in_domain, "domains must be disjoint");
            it->second = e;
            ++in_count_;
        }
    }

    // Then every other node keeps its old parent. BFS order from the
    // chain guarantees parents precede children.
    std::vector<NodeId> frontier = flip;
    std::vector<NodeId> next;
    std::map<NodeId, std::vector<NodeId>> children_of;
    for (const auto& [id, e] : other.entries_)
        if (e.parent != kNoNode) children_of[e.parent].push_back(id);
    std::map<NodeId, bool> on_chain;
    for (NodeId v : flip) on_chain[v] = true;
    while (!frontier.empty()) {
        next.clear();
        for (NodeId p : frontier) {
            const auto cit = children_of.find(p);
            if (cit == children_of.end()) continue;
            for (NodeId c : cit->second) {
                if (on_chain.count(c)) continue;  // already handled (flipped)
                const Entry& oe = other.entry(c);
                const auto it = entries_.find(c);
                if (it == entries_.end()) {
                    entries_.emplace(c, oe);
                    if (oe.in_domain) ++in_count_;
                } else if (!it->second.in_domain && oe.in_domain) {
                    // Promotion: an OUT leaf here is IN the captured domain.
                    it->second = oe;
                    ++in_count_;
                }
                // (IN here + OUT there, or OUT both: keep ours.)
                next.push_back(c);
            }
        }
        frontier = next;
    }
    FASTNET_ENSURES(invariants_hold());
}

graph::RootedTree InOutTree::to_rooted_tree(NodeId capacity) const {
    FASTNET_EXPECTS(root_ != kNoNode && root_ < capacity);
    std::vector<NodeId> parents(capacity, kNoNode);
    for (const auto& [id, e] : entries_) {
        if (!e.in_domain || id == root_) continue;
        FASTNET_EXPECTS(id < capacity);
        parents[id] = e.parent;
    }
    return graph::RootedTree(root_, std::move(parents));
}

bool InOutTree::invariants_hold() const {
    if (root_ == kNoNode) return entries_.empty();
    std::size_t in_seen = 0;
    for (const auto& [id, e] : entries_) {
        if (e.in_domain) ++in_seen;
        if (id == root_) {
            if (e.parent != kNoNode || !e.in_domain) return false;
            continue;
        }
        if (!entries_.count(e.parent)) return false;
        // OUT nodes hang under IN members; no node hangs under an OUT node.
        if (!entries_.at(e.parent).in_domain) return false;
        // Acyclicity via bounded chain walk.
        std::size_t steps = 0;
        NodeId v = id;
        while (v != root_) {
            v = entries_.at(v).parent;
            if (++steps > entries_.size()) return false;
        }
    }
    return in_seen == in_count_;
}

}  // namespace fastnet::elect
