// Bump-pointer arena for node-state storage at scale.
//
// A million-node cluster cannot afford one heap object per node: the
// allocator's per-block bookkeeping and the pointer indirection dominate
// the state itself (docs/PERF.md, "Memory at scale"). The Arena packs
// per-node records into large chunks with amortized-one allocation per
// chunk, hands out stable addresses (chunks never move or grow), and
// resets in O(1) by retaining its chunks for the next build. Callers that
// need to reference arena objects across containers use 32-bit indices
// into their own typed spans rather than pointers — half the size, and
// trivially serializable.
//
// The arena is not a general allocator: there is no per-object free.
// Everything allocated between two reset() calls has one common lifetime
// (exactly the shape of cluster construction), and objects with
// non-trivial destructors are the caller's responsibility to destroy
// before reset() — see Cluster's runtime array for the idiom.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/expect.hpp"

namespace fastnet::util {

class Arena {
public:
    /// Default chunk payload; allocations larger than this get a
    /// dedicated chunk of exactly their size.
    static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 20;

    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
        : chunk_bytes_(chunk_bytes) {
        FASTNET_EXPECTS(chunk_bytes >= 64);
    }

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// Raw allocation. `align` must be a power of two no larger than
    /// alignof(std::max_align_t); chunks are max-aligned, so aligning the
    /// bump cursor suffices.
    void* allocate(std::size_t size, std::size_t align = alignof(std::max_align_t)) {
        FASTNET_EXPECTS(align != 0 && (align & (align - 1)) == 0);
        FASTNET_EXPECTS(align <= alignof(std::max_align_t));
        if (size == 0) size = 1;
        std::size_t aligned = (cursor_ + align - 1) & ~(align - 1);
        if (current_ == nullptr || aligned + size > current_->size) {
            next_chunk(size < chunk_bytes_ ? chunk_bytes_ : size);
            aligned = 0;
        }
        cursor_ = aligned + size;
        used_ += size;
        return current_->bytes.get() + aligned;
    }

    /// Typed uninitialized array of `count` objects. The caller placement-
    /// news into it (or memset / copies, for trivial T). T must not be
    /// over-aligned beyond max_align_t.
    template <typename T>
    T* allocate_uninitialized(std::size_t count) {
        static_assert(alignof(T) <= alignof(std::max_align_t));
        return static_cast<T*>(allocate(sizeof(T) * count, alignof(T)));
    }

    /// O(1) reset: every previous allocation is invalidated, chunks are
    /// retained for reuse (bytes_reserved() is unchanged; bytes_used()
    /// drops to zero). Warm rebuild therefore touches the allocator zero
    /// times until the build outgrows the previous one.
    void reset() {
        next_ = 0;
        current_ = nullptr;
        cursor_ = 0;
        used_ = 0;
    }

    /// Logical bytes handed out since the last reset (excludes alignment
    /// padding — the metered quantity in cost::Metrics).
    std::size_t bytes_used() const { return used_; }
    /// Bytes held from the system across all chunks (>= bytes_used()).
    std::size_t bytes_reserved() const { return reserved_; }
    std::size_t chunk_count() const { return chunks_.size(); }

private:
    struct Chunk {
        std::unique_ptr<std::byte[]> bytes;
        std::size_t size = 0;
    };

    void next_chunk(std::size_t min_size) {
        // Reuse retained chunks in order; allocate only past the end.
        while (next_ < chunks_.size() && chunks_[next_].size < min_size) ++next_;
        if (next_ == chunks_.size()) {
            Chunk c;
            // operator new[] guarantees fundamental (max_align_t) alignment.
            c.bytes = std::make_unique<std::byte[]>(min_size);
            c.size = min_size;
            reserved_ += min_size;
            chunks_.push_back(std::move(c));
        }
        current_ = &chunks_[next_++];
        cursor_ = 0;
    }

    std::size_t chunk_bytes_;
    std::vector<Chunk> chunks_;
    std::size_t next_ = 0;        ///< First retained chunk not yet reused.
    Chunk* current_ = nullptr;
    std::size_t cursor_ = 0;      ///< Bump offset within current_.
    std::size_t used_ = 0;
    std::size_t reserved_ = 0;
};

}  // namespace fastnet::util
