// Growable ring-buffer FIFO, sized for a million idle queues.
//
// std::deque is the wrong container for per-node NCU work queues at
// scale: libstdc++'s deque holds a chunk map plus one 512-byte chunk
// even when empty — ~0.6 KB per node before the first work item, which
// at 10^6 nodes is more memory than all protocol state combined.
// RingQueue stores nothing until the first push, then a single
// power-of-two buffer grown by doubling. FIFO order matches deque
// push_back/pop_front exactly.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "common/expect.hpp"

namespace fastnet::util {

template <typename T>
class RingQueue {
public:
    RingQueue() = default;

    RingQueue(const RingQueue&) = delete;
    RingQueue& operator=(const RingQueue&) = delete;
    RingQueue(RingQueue&&) = default;
    RingQueue& operator=(RingQueue&&) = default;

    ~RingQueue() { clear(); }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }

    void push_back(T value) {
        if (size_ == capacity_) grow();
        ::new (static_cast<void*>(slot((head_ + size_) & (capacity_ - 1))))
            T(std::move(value));
        ++size_;
    }

    T& front() {
        FASTNET_EXPECTS(size_ != 0);
        return *slot(head_);
    }

    void pop_front() {
        FASTNET_EXPECTS(size_ != 0);
        slot(head_)->~T();
        head_ = (head_ + 1) & (capacity_ - 1);
        --size_;
    }

    /// Destroys all queued items; keeps the buffer for reuse.
    void clear() {
        while (size_ != 0) pop_front();
        head_ = 0;
    }

    /// Buffer footprint, for the memory ledger.
    std::size_t memory_bytes() const { return capacity_ * sizeof(T); }

private:
    T* slot(std::size_t i) { return reinterpret_cast<T*>(buffer_.get()) + i; }

    void grow() {
        const std::size_t new_cap = capacity_ == 0 ? 4 : capacity_ * 2;
        auto fresh = std::make_unique<std::byte[]>(new_cap * sizeof(T));
        T* dst = reinterpret_cast<T*>(fresh.get());
        for (std::size_t i = 0; i < size_; ++i) {
            T* src = slot((head_ + i) & (capacity_ - 1));
            ::new (static_cast<void*>(dst + i)) T(std::move(*src));
            src->~T();
        }
        buffer_ = std::move(fresh);
        capacity_ = new_cap;
        head_ = 0;
    }

    std::unique_ptr<std::byte[]> buffer_;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace fastnet::util
