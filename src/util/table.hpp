// Minimal fixed-width table formatter used by the benches and examples
// to print the paper-reproduction tables ("who wins, by what factor").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fastnet::util {

class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Adds a row; must match the header count.
    Table& row(std::vector<std::string> cells);

    /// Convenience: stream-formats each cell.
    template <typename... Ts>
    Table& add(const Ts&... cells) {
        return row({format_cell(cells)...});
    }

    /// Renders with aligned columns, a header rule, and an optional title.
    void print(std::ostream& os, const std::string& title = {}) const;

    /// Comma-separated rendering for downstream plotting.
    void print_csv(std::ostream& os) const;

    std::size_t row_count() const { return rows_.size(); }

private:
    static std::string format_cell(const std::string& s) { return s; }
    static std::string format_cell(const char* s) { return s; }
    static std::string format_cell(bool b) { return b ? "yes" : "no"; }
    static std::string format_cell(double v);
    template <typename T>
    static std::string format_cell(const T& v) {
        return std::to_string(v);
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace fastnet::util
