#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/expect.hpp"

namespace fastnet::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    FASTNET_EXPECTS(!headers_.empty());
}

Table& Table::row(std::vector<std::string> cells) {
    FASTNET_EXPECTS_MSG(cells.size() == headers_.size(), "row width mismatch");
    rows_.push_back(std::move(cells));
    return *this;
}

std::string Table::format_cell(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3g", v);
    return buf;
}

void Table::print(std::ostream& os, const std::string& title) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

    if (!title.empty()) os << "\n== " << title << " ==\n";
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "  ";
            os << cells[c];
            for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad) os << ' ';
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c) os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
}

}  // namespace fastnet::util
