// Open-addressing hash map from 64-bit keys to a trivial value type.
//
// The live-invariant monitors sit on the per-hop fast path; the
// std::map-based ledgers they started with cost an O(log n) pointer
// chase plus a heap node per key, which at million-packet runs dominated
// the monitors themselves. FlatMap64 is the compact indexed replacement:
// one flat power-of-two table, linear probing, no per-entry allocation,
// amortized O(1) find/insert. The monitor use sites never erase (they
// zero values and compact at end-of-run); erase() exists for long-lived
// churning ledgers (the call agents' per-call records) and uses
// backward-shift deletion, so probing stays correct without tombstones.
//
// Iteration order is the table's probe order and therefore depends on
// insertion history; callers needing deterministic output collect and
// sort entries (see LineageConservationMonitor::on_finish).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/expect.hpp"

namespace fastnet::util {

template <typename Value>
class FlatMap64 {
public:
    struct Entry {
        std::uint64_t key = 0;
        Value value{};
        bool occupied = false;
    };

    FlatMap64() = default;

    /// Returns the value slot for `key`, inserting a default-constructed
    /// value on first use.
    Value& operator[](std::uint64_t key) {
        if (entries_.empty() || (size_ + 1) * 8 > entries_.size() * 5) grow();
        std::size_t i = probe(key);
        if (!entries_[i].occupied) {
            entries_[i].occupied = true;
            entries_[i].key = key;
            ++size_;
        }
        return entries_[i].value;
    }

    /// Pointer to the value for `key`, or nullptr.
    Value* find(std::uint64_t key) {
        if (entries_.empty()) return nullptr;
        const std::size_t i = probe(key);
        return entries_[i].occupied ? &entries_[i].value : nullptr;
    }
    const Value* find(std::uint64_t key) const {
        return const_cast<FlatMap64*>(this)->find(key);
    }

    /// Removes `key` if present; returns whether it was. Backward-shift
    /// deletion: entries in the probe run after the hole move back when
    /// their home slot lies at or before it, so lookups never cross a
    /// vacated slot they would have probed through.
    bool erase(std::uint64_t key) {
        if (entries_.empty()) return false;
        std::size_t i = probe(key);
        if (!entries_[i].occupied) return false;
        const std::size_t mask = entries_.size() - 1;
        std::size_t hole = i;
        std::size_t j = (hole + 1) & mask;
        while (entries_[j].occupied) {
            const std::size_t home =
                static_cast<std::size_t>(mix(entries_[j].key)) & mask;
            // Shift j into the hole unless its home lies strictly inside
            // (hole, j] — i.e. the cyclic distance home->hole is no
            // larger than home->j.
            if (((hole - home) & mask) <= ((j - home) & mask)) {
                entries_[hole] = entries_[j];
                hole = j;
            }
            j = (j + 1) & mask;
        }
        entries_[hole] = Entry{};
        --size_;
        return true;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void clear() {
        entries_.clear();
        size_ = 0;
    }

    /// All occupied entries, probe order (not deterministic across
    /// insertion histories — sort before reporting).
    const std::vector<Entry>& raw_entries() const { return entries_; }

    /// Heap footprint, for the memory ledger.
    std::size_t memory_bytes() const { return entries_.capacity() * sizeof(Entry); }

private:
    static std::uint64_t mix(std::uint64_t x) {
        // splitmix64 finalizer — full-avalanche, so linear probing stays
        // clustered only by genuine collisions.
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    std::size_t probe(std::uint64_t key) const {
        const std::size_t mask = entries_.size() - 1;
        std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
        while (entries_[i].occupied && entries_[i].key != key) i = (i + 1) & mask;
        return i;
    }

    void grow() {
        std::vector<Entry> old = std::move(entries_);
        entries_.assign(old.empty() ? 16 : old.size() * 2, Entry{});
        for (const Entry& e : old) {
            if (!e.occupied) continue;
            const std::size_t i = probe(e.key);
            FASTNET_ENSURES(!entries_[i].occupied);
            entries_[i] = e;
        }
    }

    std::vector<Entry> entries_;
    std::size_t size_ = 0;
};

}  // namespace fastnet::util
