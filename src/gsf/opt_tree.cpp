#include "gsf/opt_tree.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace fastnet::gsf {
namespace {

/// Recursive OT materialization with a node budget: allocates the root
/// of OT(t) under `parent`, then its children — which are the roots of
/// OT(t - C - P), OT(t - P - C - P), ... (the unrolled eq. 2), largest
/// subtree first. Stops silently when the budget runs out (pruning).
struct Builder {
    Tick c;
    Tick p;
    std::uint64_t budget;
    std::vector<NodeId> parents;

    void build(Tick t, NodeId parent) {
        if (budget == 0 || t < p) return;
        const NodeId id = static_cast<NodeId>(parents.size());
        parents.push_back(parent);
        --budget;
        for (Tick tau = t; tau >= 2 * p + c; tau -= p) build(tau - c - p, id);
    }
};

}  // namespace

OptimalTreeResult build_optimal_tree(std::uint64_t n, Tick hop_delay, Tick ncu_delay) {
    FASTNET_EXPECTS(n >= 1);
    FASTNET_EXPECTS_MSG(ncu_delay > 0,
                        "P = 0 is the traditional model; use make_star_tree");
    ScheduleSolver solver(hop_delay, ncu_delay);
    const Tick t_opt = solver.optimal_time(n);

    Builder b{hop_delay, ncu_delay, n, {}};
    b.build(t_opt, kNoNode);
    FASTNET_ENSURES_MSG(b.parents.size() == n, "OT(t_opt) smaller than n");
    OptimalTreeResult out{graph::RootedTree(0, std::move(b.parents)), t_opt};
    return out;
}

graph::RootedTree make_star_tree(NodeId n) {
    FASTNET_EXPECTS(n >= 1);
    std::vector<NodeId> parents(n, 0);
    parents[0] = kNoNode;
    return graph::RootedTree(0, std::move(parents));
}

graph::RootedTree make_kary_gather_tree(NodeId n, unsigned k) {
    FASTNET_EXPECTS(n >= 1 && k >= 1);
    std::vector<NodeId> parents(n, kNoNode);
    for (NodeId i = 1; i < n; ++i) parents[i] = (i - 1) / k;
    return graph::RootedTree(0, std::move(parents));
}

Tick predicted_completion(const graph::RootedTree& tree, Tick hop_delay, Tick ncu_delay) {
    // ready[v]: the time v's partial result leaves v (equivalently, when
    // v's last NCU step for the gather completes). Every NCU spends
    // [0, P] on its start step first; children results arrive ready+C
    // and are served FIFO at P each.
    std::vector<Tick> ready(tree.node_capacity(), 0);
    for (NodeId v : tree.postorder()) {
        std::vector<Tick> arrivals;
        arrivals.reserve(tree.children(v).size());
        for (NodeId ch : tree.children(v)) arrivals.push_back(ready[ch] + hop_delay);
        std::sort(arrivals.begin(), arrivals.end());
        Tick busy = ncu_delay;  // the start step
        for (Tick a : arrivals) busy = std::max(busy, a) + ncu_delay;
        ready[v] = busy;
    }
    return ready[tree.root()];
}

}  // namespace fastnet::gsf
