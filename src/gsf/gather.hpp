// The tree-based distributed computation of Section 5, runnable on the
// simulated complete graph.
//
// All n nodes hold an input value; at time 0 every node starts. Leaves
// send their value to their tree parent (one direct message over the
// complete graph); an internal node folds each arriving partial result
// into its accumulator (one NCU step per message, FIFO — the model's
// requirement) and, after hearing from all children, forwards its
// subtree's partial result. Node `root` terminates with f(I_1..I_n).
//
// The combine function must be associative and commutative (Section
// 5.1); the library ships Sum / Max / Xor / Gcd instances and the
// harness verifies the computed value against a sequential fold.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cost/metrics.hpp"
#include "graph/rooted_tree.hpp"
#include "node/cluster.hpp"

namespace fastnet::gsf {

/// Associative + commutative fold over uint64 inputs.
using Combine = std::function<std::uint64_t(std::uint64_t, std::uint64_t)>;

Combine combine_sum();
Combine combine_max();
Combine combine_xor();
Combine combine_gcd();

struct GatherSpec {
    graph::RootedTree tree;          ///< Gather tree over node ids 0..n-1.
    std::vector<std::uint64_t> inputs;  ///< I_u per node.
    Combine combine;
    /// After the root computes f, push the result back down the tree so
    /// *every* node terminates knowing f (the natural extension the
    /// paper's problem statement stops short of: it only requires node 1
    /// to know the answer).
    bool disseminate = false;
};

/// Per-node protocol.
class TreeGatherProtocol final : public node::Protocol {
public:
    const char* name() const override { return "tree_gather"; }
    /// `spec` is shared by all nodes (immutable).
    explicit TreeGatherProtocol(std::shared_ptr<const GatherSpec> spec);

    void on_start(node::Context& ctx) override;
    void on_message(node::Context& ctx, const hw::Delivery& d) override;

    bool done() const { return done_; }
    Tick done_time() const { return done_time_; }
    std::uint64_t result() const { return acc_; }
    /// Dissemination mode: whether/when this node learned the final f.
    bool knows_final() const { return knows_final_; }
    Tick final_known_time() const { return final_known_time_; }

private:
    void maybe_forward(node::Context& ctx);
    void push_down(node::Context& ctx, std::uint64_t value);

    std::shared_ptr<const GatherSpec> spec_;
    std::uint64_t acc_ = 0;
    std::size_t pending_children_ = 0;
    bool started_ = false;
    bool done_ = false;
    Tick done_time_ = kNever;
    bool knows_final_ = false;
    Tick final_known_time_ = kNever;
};

struct GatherOutcome {
    std::uint64_t result = 0;
    std::uint64_t expected = 0;  ///< Sequential fold of the inputs.
    bool correct = false;
    Tick completion = 0;         ///< Root's final NCU step time.
    /// Dissemination mode only: when the last node learned f, and
    /// whether all did.
    bool all_know_final = false;
    Tick dissemination_completion = 0;
    cost::CostReport cost;
};

/// Runs the tree-based algorithm on a complete graph of tree.size()
/// nodes with the given model parameters. Inputs default to a seeded
/// random vector when empty.
GatherOutcome run_tree_gather(const graph::RootedTree& tree, ModelParams params,
                              Combine combine = combine_sum(),
                              std::vector<std::uint64_t> inputs = {},
                              std::uint64_t seed = 7, bool disseminate = false);

}  // namespace fastnet::gsf
