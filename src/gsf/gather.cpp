#include "gsf/gather.hpp"

#include <numeric>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace fastnet::gsf {
namespace {

struct PartialResult final : hw::TypedPayload<PartialResult> {
    std::uint64_t value = 0;
};

struct FinalResult final : hw::TypedPayload<FinalResult> {
    std::uint64_t value = 0;
};

}  // namespace

Combine combine_sum() {
    return [](std::uint64_t a, std::uint64_t b) { return a + b; };
}
Combine combine_max() {
    return [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; };
}
Combine combine_xor() {
    return [](std::uint64_t a, std::uint64_t b) { return a ^ b; };
}
Combine combine_gcd() {
    return [](std::uint64_t a, std::uint64_t b) { return std::gcd(a, b); };
}

TreeGatherProtocol::TreeGatherProtocol(std::shared_ptr<const GatherSpec> spec)
    : spec_(std::move(spec)) {
    FASTNET_EXPECTS(spec_ != nullptr && spec_->combine != nullptr);
}

void TreeGatherProtocol::on_start(node::Context& ctx) {
    FASTNET_EXPECTS(!started_);
    started_ = true;
    acc_ = spec_->inputs[ctx.self()];
    pending_children_ = spec_->tree.children(ctx.self()).size();
    maybe_forward(ctx);
}

void TreeGatherProtocol::on_message(node::Context& ctx, const hw::Delivery& d) {
    if (const auto* fin = hw::payload_as<FinalResult>(d)) {
        // Downcast phase: learn f, relay to our children.
        FASTNET_EXPECTS(spec_->disseminate);
        if (knows_final_) return;
        knows_final_ = true;
        final_known_time_ = ctx.now();
        acc_ = fin->value;
        push_down(ctx, fin->value);
        return;
    }
    const auto* part = hw::payload_as<PartialResult>(d);
    FASTNET_EXPECTS_MSG(part != nullptr, "unexpected payload in gather");
    FASTNET_EXPECTS_MSG(started_ && pending_children_ > 0, "stray partial result");
    acc_ = spec_->combine(acc_, part->value);
    pending_children_ -= 1;
    maybe_forward(ctx);
}

void TreeGatherProtocol::push_down(node::Context& ctx, std::uint64_t value) {
    auto msg = std::make_shared<FinalResult>();
    msg->value = value;
    for (NodeId child : spec_->tree.children(ctx.self())) {
        hw::PortId port = hw::kNoPort;
        for (const node::LocalLink& l : ctx.links()) {
            if (l.neighbor == child) {
                port = l.port;
                break;
            }
        }
        FASTNET_ENSURES_MSG(port != hw::kNoPort, "complete graph lacks child link");
        ctx.send({hw::AnrLabel::normal(port), hw::AnrLabel::normal(hw::kNcuPort)}, msg);
    }
}

void TreeGatherProtocol::maybe_forward(node::Context& ctx) {
    if (pending_children_ > 0 || done_) return;
    done_ = true;
    done_time_ = ctx.now();
    const NodeId self = ctx.self();
    if (self == spec_->tree.root()) {
        // Final result computed here; optionally push it back down.
        knows_final_ = true;
        final_known_time_ = ctx.now();
        if (spec_->disseminate) push_down(ctx, acc_);
        return;
    }
    // One direct hop to the parent over the complete graph.
    const NodeId parent = spec_->tree.parent(self);
    hw::PortId port = hw::kNoPort;
    for (const node::LocalLink& l : ctx.links()) {
        if (l.neighbor == parent) {
            port = l.port;
            break;
        }
    }
    FASTNET_ENSURES_MSG(port != hw::kNoPort, "complete graph lacks parent link");
    auto msg = std::make_shared<PartialResult>();
    msg->value = acc_;
    ctx.send({hw::AnrLabel::normal(port), hw::AnrLabel::normal(hw::kNcuPort)},
             std::move(msg));
}

GatherOutcome run_tree_gather(const graph::RootedTree& tree, ModelParams params,
                              Combine combine, std::vector<std::uint64_t> inputs,
                              std::uint64_t seed, bool disseminate) {
    const NodeId n = tree.size();
    FASTNET_EXPECTS(n >= 1);
    FASTNET_EXPECTS_MSG(tree.node_capacity() == n, "tree ids must be dense 0..n-1");
    if (inputs.empty()) {
        Rng rng(seed);
        inputs.resize(n);
        for (auto& v : inputs) v = rng.below(1'000'000);
    }
    FASTNET_EXPECTS(inputs.size() == n);

    auto spec = std::make_shared<GatherSpec>();
    spec->tree = tree;
    spec->inputs = inputs;
    spec->combine = std::move(combine);
    spec->disseminate = disseminate;

    GatherOutcome out;
    out.expected = inputs[0];
    for (NodeId u = 1; u < n; ++u) out.expected = spec->combine(out.expected, inputs[u]);

    node::ClusterConfig cfg;
    cfg.params = params;
    node::Cluster cluster(graph::make_complete(n), [&spec](NodeId) {
        return std::make_unique<TreeGatherProtocol>(spec);
    }, cfg);
    cluster.start_all(0);
    cluster.run();

    const auto& root = cluster.protocol_as<TreeGatherProtocol>(tree.root());
    FASTNET_ENSURES_MSG(root.done(), "gather did not complete");
    out.result = root.result();
    out.correct = out.result == out.expected;
    out.completion = root.done_time();
    if (disseminate) {
        out.all_know_final = true;
        for (NodeId u = 0; u < n; ++u) {
            const auto& p = cluster.protocol_as<TreeGatherProtocol>(u);
            if (!p.knows_final() || p.result() != out.expected) out.all_know_final = false;
            if (p.final_known_time() != kNever)
                out.dissemination_completion =
                    std::max(out.dissemination_completion, p.final_known_time());
        }
    }
    out.cost = cost::snapshot(cluster.metrics(), cluster.simulator().now());
    return out;
}

}  // namespace fastnet::gsf
