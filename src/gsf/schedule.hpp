// Section 5: the size recursion S(t) for optimal tree-based computation
// of globally sensitive functions under hop delay C and NCU delay P.
//
//   S(t) = 0                          t < P
//   S(t) = 1                          P <= t < 2P + C
//   S(t) = S(t - P) + S(t - C - P)    t >= 2P + C          (eq. 3)
//
// S(t) is the maximum number of nodes over which a tree-based algorithm
// can compute any associative-commutative globally sensitive function
// within worst-case time t. Special cases reproduced exactly:
//   * C=0, P=1  — S(k) = 2^(k-1)  (binomial trees, eq. 6);
//   * C=1, P=1  — S(k) = Fibonacci(k)  (eq. 9-11);
//   * C>0, P=0  — the traditional model: the recursion "blows up", any
//     number of nodes finishes by t = C (star), S(t >= C) = unbounded.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace fastnet::gsf {

/// Marker for the P = 0 blow-up (Section 5, Example 2).
inline constexpr std::uint64_t kUnboundedSize = ~std::uint64_t{0};

/// Memoizing solver for one (C, P) pair. All arithmetic saturates at
/// kUnboundedSize - 1 so huge trees never overflow.
class ScheduleSolver {
public:
    ScheduleSolver(Tick hop_delay, Tick ncu_delay);

    Tick C() const { return c_; }
    Tick P() const { return p_; }

    /// S(t): maximum tree size finishing within t. kUnboundedSize when
    /// P == 0 and t >= C (the traditional model's star).
    std::uint64_t size_at(Tick t);

    /// Smallest t with S(t) >= n — the optimal worst-case completion
    /// time for n nodes (Theorem 6 + the Section 5.2 computation). The
    /// answer always lies on the iP + jC lattice.
    Tick optimal_time(std::uint64_t n);

private:
    std::uint64_t compute(Tick t);

    Tick c_;
    Tick p_;
    std::vector<std::uint64_t> memo_;  ///< memo_[t] = S(t), grown on demand.
};

/// Convenience one-shot wrappers.
std::uint64_t tree_size_within(Tick t, Tick hop_delay, Tick ncu_delay);
Tick optimal_gather_time(std::uint64_t n, Tick hop_delay, Tick ncu_delay);

/// Closed forms for the paper's worked examples (tests compare these
/// against the recursion):
/// 2^(k-1) with saturation (C=0, P=1).
std::uint64_t binomial_size(unsigned k);
/// Fibonacci with S(1) = S(2) = 1 (C=1, P=1).
std::uint64_t fibonacci_size(unsigned k);

/// The Section 5.2 observation made executable: every time at which
/// S changes value has the form iP + jC with 0 <= i, j <= n (at most
/// n^2 lattice points need be examined). Returns the sorted distinct
/// lattice times <= `horizon`; tests verify optimal_time(n) always lies
/// on the lattice of its own n.
std::vector<Tick> time_lattice(std::uint64_t n, Tick hop_delay, Tick ncu_delay,
                               Tick horizon);

}  // namespace fastnet::gsf
