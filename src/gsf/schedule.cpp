#include "gsf/schedule.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace fastnet::gsf {
namespace {

constexpr std::uint64_t kSaturate = kUnboundedSize - 1;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
    if (a == kUnboundedSize || b == kUnboundedSize) return kUnboundedSize;
    if (a >= kSaturate - b) return kSaturate;
    return a + b;
}

}  // namespace

ScheduleSolver::ScheduleSolver(Tick hop_delay, Tick ncu_delay)
    : c_(hop_delay), p_(ncu_delay) {
    FASTNET_EXPECTS(c_ >= 0 && p_ >= 0);
    FASTNET_EXPECTS_MSG(c_ > 0 || p_ > 0, "C = P = 0 has no time scale");
}

std::uint64_t ScheduleSolver::compute(Tick t) {
    if (p_ == 0) {
        // Example 2 (traditional model): a star finishes any size by C.
        if (t < 0) return 0;
        return t >= c_ ? kUnboundedSize : 1;
    }
    if (t < p_) return 0;
    if (t < 2 * p_ + c_) return 1;
    // Both arguments are smaller and already memoized (ascending fill).
    return sat_add(memo_[static_cast<std::size_t>(t - p_)],
                   memo_[static_cast<std::size_t>(t - c_ - p_)]);
}

std::uint64_t ScheduleSolver::size_at(Tick t) {
    if (t < 0) return 0;
    if (p_ == 0) return compute(t);
    const auto need = static_cast<std::size_t>(t) + 1;
    while (memo_.size() < need)
        memo_.push_back(compute(static_cast<Tick>(memo_.size())));
    return memo_[static_cast<std::size_t>(t)];
}

Tick ScheduleSolver::optimal_time(std::uint64_t n) {
    FASTNET_EXPECTS(n >= 1);
    if (n == 1) return p_;  // the root's own computation
    if (p_ == 0) return c_;
    // S is non-decreasing and eventually exponential; scan upward. The
    // answer is at most (C + 2P) * ceil(log2 n) + P (repeated doubling).
    const Tick limit = (c_ + 2 * p_) * static_cast<Tick>(ceil_log2(n) + 2) + p_;
    for (Tick t = p_; t <= limit; ++t)
        if (size_at(t) >= n) return t;
    FASTNET_ENSURES_MSG(false, "optimal_time scan limit too small");
    return limit;
}

std::uint64_t tree_size_within(Tick t, Tick hop_delay, Tick ncu_delay) {
    ScheduleSolver s(hop_delay, ncu_delay);
    return s.size_at(t);
}

Tick optimal_gather_time(std::uint64_t n, Tick hop_delay, Tick ncu_delay) {
    ScheduleSolver s(hop_delay, ncu_delay);
    return s.optimal_time(n);
}

std::uint64_t binomial_size(unsigned k) {
    if (k == 0) return 0;
    if (k - 1 >= 63) return kSaturate;
    return std::uint64_t{1} << (k - 1);
}

std::vector<Tick> time_lattice(std::uint64_t n, Tick hop_delay, Tick ncu_delay,
                               Tick horizon) {
    FASTNET_EXPECTS(hop_delay >= 0 && ncu_delay >= 0 && horizon >= 0);
    std::vector<Tick> points;
    const Tick i_max = static_cast<Tick>(n);
    for (Tick i = 0; i <= i_max; ++i) {
        const Tick base = i * ncu_delay;
        if (base > horizon) break;
        if (hop_delay == 0) {
            points.push_back(base);
            continue;
        }
        for (Tick j = 0; j <= i_max; ++j) {
            const Tick t = base + j * hop_delay;
            if (t > horizon) break;
            points.push_back(t);
        }
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());
    return points;
}

std::uint64_t fibonacci_size(unsigned k) {
    if (k == 0) return 0;
    std::uint64_t a = 1, b = 1;  // S(1), S(2)
    for (unsigned i = 2; i < k; ++i) {
        const std::uint64_t next = sat_add(a, b);
        a = b;
        b = next;
    }
    return k == 1 ? a : b;
}

}  // namespace fastnet::gsf
