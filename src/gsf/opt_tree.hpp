// Materialization of the optimal gather trees OT(t) of Section 5:
//
//   OT(t) = OT(t - P)  <-u  OT(t - C - P)        (eq. 2)
//
// (the second tree's root becomes one more child of the first's root).
// build_optimal_tree(n, C, P) returns an n-node rooted tree achieving
// the optimal worst-case completion time optimal_time(n): OT(t_opt) is
// materialized and, when S(t_opt) > n, pruned — removing subtrees never
// delays the schedule, and no n-node tree beats t_opt (Theorem 6).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "graph/rooted_tree.hpp"
#include "gsf/schedule.hpp"

namespace fastnet::gsf {

struct OptimalTreeResult {
    graph::RootedTree tree;    ///< Exactly n nodes, ids 0..n-1, root 0.
    Tick predicted_time = 0;   ///< optimal_time(n; C, P).
};

/// Builds the pruned OT(optimal_time(n)) with exactly `n` nodes.
/// Requires P > 0 (with P = 0 any star is optimal; see make_star_tree).
OptimalTreeResult build_optimal_tree(std::uint64_t n, Tick hop_delay, Tick ncu_delay);

/// Baselines for the Section 5 comparison benches.
/// Star: root 0, all others direct children (optimal when P = 0; serial
/// bottleneck C + nP when P > 0).
graph::RootedTree make_star_tree(NodeId n);
/// Balanced k-ary tree (the "obvious" parallel baseline).
graph::RootedTree make_kary_gather_tree(NodeId n, unsigned k);

/// Predicted worst-case completion of the tree-based algorithm on an
/// arbitrary tree: leaves start sending at P (their own NCU step),
/// every message costs C, and a parent processes arrivals serially at P
/// each (FIFO). Matches the simulator's accounting exactly.
Tick predicted_completion(const graph::RootedTree& tree, Tick hop_delay, Tick ncu_delay);

}  // namespace fastnet::gsf
