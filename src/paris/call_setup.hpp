// PARIS-style call setup and take-down — the application Section 2
// points at when it introduces selective copy ("An example how the copy
// function is used for setup and take-down of calls appears in [CG88]").
//
// A call is a bandwidth reservation along a source-routed path. The
// source computes the route from its (converged) topology knowledge and
// launches ONE setup packet whose intermediate hops use copy ids: every
// NCU on the path receives the packet in parallel and reserves capacity
// on its outgoing link — call establishment in one time unit and one
// system call per on-path node, which is the whole point of the model.
//
//   * If every hop reserves, the destination's ACCEPT (one direct
//     message over the accumulated reverse route) activates the call.
//   * A node without spare capacity sends REJECT to the source, which
//     releases the partial reservation with a TAKEDOWN copy packet.
//   * Take-down of an active call is the same single copy packet.
//   * A link failure under an active call makes the adjacent on-path
//     NCUs (notified by the data-link layer) send DISCONNECT toward the
//     endpoint they can still reach; every node on the way releases.
//
// Capacity bookkeeping is distributed and conservative: the *upstream*
// node of each directed hop owns the reservation for that hop.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "hw/anr.hpp"
#include "node/cluster.hpp"

namespace fastnet::paris {

/// Globally unique call identifier (source node + its local sequence).
struct CallId {
    NodeId source = kNoNode;
    std::uint64_t seq = 0;
    friend auto operator<=>(const CallId&, const CallId&) = default;
};

enum class CallState {
    kIdle,
    kSettingUp,   ///< Source: setup sent, waiting for ACCEPT/REJECT.
    kReserved,    ///< On-path node: bandwidth held, call not yet confirmed down.
    kActive,      ///< Source/destination: accepted.
    kRejected,    ///< Source: a hop lacked capacity.
    kReleased,    ///< Torn down normally.
    kFailed,      ///< Lost to a link failure.
};

const char* call_state_name(CallState s);

/// A scripted call request (issued by the source's protocol at `at`).
struct CallRequest {
    Tick at = 0;
    NodeId destination = kNoNode;
    std::uint32_t demand = 1;
    /// If >= 0, tear the call down this long after it becomes active.
    Tick hold_time = -1;
};

/// One node's record of a call it participates in.
struct CallRecord {
    CallId id;
    NodeId source = kNoNode;
    NodeId destination = kNoNode;
    std::uint32_t demand = 0;
    CallState state = CallState::kIdle;
    /// Outgoing edge this node reserved for the call (kNoEdge at the
    /// destination).
    EdgeId reserved_edge = kNoEdge;
    hw::AnrHeader to_source;       ///< Route back to the source.
    hw::AnrHeader to_destination;  ///< Route onward to the destination.
};

struct CallAgentOptions {
    /// Capacity units per (node, outgoing link).
    std::uint32_t link_capacity = 4;
    /// Scripted requests for this node.
    std::vector<CallRequest> requests;
    /// Ablation A5: when false, setup and teardown travel hop by hop —
    /// each on-path NCU receives, reserves and *re-sends* (the pre-PARIS
    /// software path). Establishment then costs O(path) time units
    /// instead of one, with the same number of system calls.
    bool selective_copy = true;
};

class CallAgentProtocol final : public node::Protocol {
public:
    /// `g` must outlive the protocol (route computation source — stands
    /// in for the node's converged topology database).
    CallAgentProtocol(const graph::Graph& g, CallAgentOptions options);

    void on_start(node::Context& ctx) override;
    void on_timer(node::Context& ctx, std::uint64_t cookie) override;
    void on_message(node::Context& ctx, const hw::Delivery& d) override;
    void on_link_state(node::Context& ctx, const node::LocalLink& link, bool up) override;

    // ---- observation -----------------------------------------------------
    /// State of a call at this node (kIdle if unknown here).
    CallState state_of(CallId id) const;
    /// All calls this node has records for.
    const std::map<CallId, CallRecord>& calls() const { return records_; }
    /// Remaining capacity on the outgoing side of `edge`.
    std::uint32_t free_capacity(EdgeId edge) const;
    /// Source-side tallies.
    unsigned calls_active() const { return calls_active_; }
    unsigned calls_rejected() const { return calls_rejected_; }
    unsigned calls_failed() const { return calls_failed_; }
    unsigned calls_released() const { return calls_released_; }

private:
    void place_call(node::Context& ctx, const CallRequest& req);
    void send_teardown(node::Context& ctx, const CallRecord& rec, bool due_to_reject);
    void teardown(node::Context& ctx, CallRecord& rec);
    void release_local(CallRecord& rec, CallState final_state);
    bool reserve(EdgeId edge, std::uint32_t demand);

    const graph::Graph& graph_;
    CallAgentOptions options_;
    std::map<EdgeId, std::uint32_t> reserved_;  ///< Units held per outgoing edge.
    std::map<CallId, CallRecord> records_;
    std::map<std::uint64_t, CallRequest> pending_;  ///< timer cookie -> request
    std::map<std::uint64_t, CallId> hold_timers_;   ///< timer cookie -> call
    std::uint64_t next_seq_ = 1;
    std::uint64_t next_cookie_ = 1;
    unsigned calls_active_ = 0;
    unsigned calls_rejected_ = 0;
    unsigned calls_failed_ = 0;
    unsigned calls_released_ = 0;
};

/// Factory over a shared graph + per-node request scripts.
node::ProtocolFactory make_call_agents(const graph::Graph& g, std::uint32_t link_capacity,
                                       std::map<NodeId, std::vector<CallRequest>> scripts,
                                       bool selective_copy = true);

}  // namespace fastnet::paris
