// PARIS-style call setup and take-down — the application Section 2
// points at when it introduces selective copy ("An example how the copy
// function is used for setup and take-down of calls appears in [CG88]").
//
// A call is a bandwidth reservation along a source-routed path. The
// source computes the route from its (converged) topology knowledge and
// launches ONE setup packet whose intermediate hops use copy ids: every
// NCU on the path receives the packet in parallel and reserves capacity
// on its outgoing link — call establishment in one time unit and one
// system call per on-path node, which is the whole point of the model.
//
//   * If every hop reserves, the destination's ACCEPT (one direct
//     message over the accumulated reverse route) activates the call.
//   * A node without spare capacity sends REJECT to the source, which
//     releases the partial reservation with a TAKEDOWN copy packet.
//   * Take-down of an active call is the same single copy packet.
//   * A link failure under a call makes the adjacent on-path NCUs
//     (notified by the data-link layer) send DISCONNECT toward the
//     endpoint they can still reach; every node on the way releases.
//
// Capacity bookkeeping is distributed and conservative: the *upstream*
// node of each directed hop owns the reservation for that hop.
//
// Sustained-load hardening (ROADMAP item 3, docs/ROBUSTNESS.md "Calls
// under fire"): the fair-weather machine above silently leaks capacity
// the moment a control message is *silently* dropped — a lost ACCEPT
// leaves the source in kSettingUp and every upstream hop reserved
// forever; a lost TAKEDOWN strands the downstream half of an active
// call. CallAgentOptions therefore adds, all default-off:
//
//   * a source-side setup timer whose expiry is REJECT-equivalent,
//   * bounded retries with exponential backoff + seeded jitter,
//   * admission control (max in-flight setups, token-bucket arrival
//     shedding, live-record ceiling, obs::PressureBoard hook),
//   * a reservation lease at every non-source hop: the source refreshes
//     active calls with a periodic copy packet; a hop whose lease
//     lapses reaps the orphaned reservation locally,
//   * an open-loop workload generator (paris/workload.hpp) replacing
//     scripted one-shots for offered loads beyond capacity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "hw/anr.hpp"
#include "node/cluster.hpp"
#include "obs/monitor.hpp"
#include "paris/workload.hpp"
#include "util/flat_map.hpp"

namespace fastnet::node {
class ParallelCluster;
}

namespace fastnet::paris {

/// Globally unique call identifier (source node + its local sequence).
/// The sequence embeds the source's incarnation in its high bits, so a
/// restarted source never reuses a pre-crash id that on-path nodes may
/// still hold records for.
struct CallId {
    NodeId source = kNoNode;
    std::uint64_t seq = 0;
    friend auto operator<=>(const CallId&, const CallId&) = default;
};

enum class CallState {
    kIdle,
    kSettingUp,   ///< Source: setup sent, waiting for ACCEPT/REJECT.
    kReserved,    ///< On-path node: bandwidth held, call not yet confirmed down.
    kActive,      ///< Source/destination: accepted.
    kBackoff,     ///< Source: setup failed, retry timer pending (nothing held).
    kRejected,    ///< Source: a hop lacked capacity (or the retry budget ran out).
    kReleased,    ///< Torn down normally.
    kFailed,      ///< Lost to a link failure or an expired lease.
};

const char* call_state_name(CallState s);

/// True for states that hold no resources and expect no further events.
inline bool call_state_terminal(CallState s) {
    return s == CallState::kRejected || s == CallState::kReleased ||
           s == CallState::kFailed;
}

/// kCallEvent trace codes (TraceRecord::b; a = packed call id,
/// flag = attempt number).
enum class CallEvent : std::uint8_t {
    kOffered = 1,  ///< Arrival at the source (scripted or generated).
    kShed,         ///< Refused by admission control.
    kPlaced,       ///< Setup attempt injected.
    kReserved,     ///< On-path node reserved capacity.
    kRejected,     ///< Capacity reject (at the bottleneck or final at source).
    kAccepted,     ///< Destination accepted.
    kActive,       ///< Source activated.
    kTimeout,      ///< Source setup timer expired.
    kRetry,        ///< Backoff scheduled; a later kPlaced is the re-attempt.
    kReleased,     ///< Normal release (teardown processed).
    kDisconnect,   ///< Released due to a link failure.
    kExpired,      ///< Orphaned reservation reaped by lease expiry.
    kBlocked,      ///< Final failure at the source (retry budget exhausted).
    kRefresh,      ///< Lease refresh processed.
};

const char* call_event_name(CallEvent e);

/// A scripted call request (issued by the source's protocol at `at`).
struct CallRequest {
    Tick at = 0;
    NodeId destination = kNoNode;
    std::uint32_t demand = 1;
    /// If >= 0, tear the call down this long after it becomes active.
    Tick hold_time = -1;
};

/// One node's record of a call it participates in.
struct CallRecord {
    CallId id;
    NodeId source = kNoNode;
    NodeId destination = kNoNode;
    std::uint32_t demand = 0;
    CallState state = CallState::kIdle;
    /// Outgoing edge this node reserved for the call (kNoEdge at the
    /// destination).
    EdgeId reserved_edge = kNoEdge;
    hw::AnrHeader to_source;       ///< Route back to the source.
    hw::AnrHeader to_destination;  ///< Route onward to the destination.
    // ---- robustness state (see the header comment) -------------------
    Tick requested_at = 0;    ///< Source: arrival time (latency base).
    Tick hold_time = -1;      ///< Source: teardown delay once active.
    Tick lease_deadline = 0;  ///< Non-source: reap after this tick (0 = no lease).
    std::uint8_t attempts = 0;  ///< Source: setup attempts so far.
};

struct CallAgentOptions {
    /// Capacity units per (node, outgoing link).
    std::uint32_t link_capacity = 4;
    /// Scripted requests for this node.
    std::vector<CallRequest> requests;
    /// Ablation A5: when false, setup and teardown travel hop by hop —
    /// each on-path NCU receives, reserves and *re-sends* (the pre-PARIS
    /// software path). Establishment then costs O(path) time units
    /// instead of one, with the same number of system calls.
    bool selective_copy = true;

    // ---- robustness knobs (all default off = legacy behaviour) -------
    /// Source: a setup unresolved after this many ticks is treated
    /// exactly like a REJECT (partials torn down, retry or block).
    Tick setup_timeout = 0;
    /// Source: re-placements allowed after a timeout/reject before the
    /// call is finally blocked.
    unsigned max_retries = 0;
    /// Attempt k (1-based) backs off retry_backoff << (k-1) ticks ...
    Tick retry_backoff = 2;
    /// ... plus a uniform draw from [0, retry_jitter] on the node's Rng.
    Tick retry_jitter = 0;
    /// Non-source hops: every record carries a lease this long; a lapsed
    /// lease reaps the reservation locally (the orphan reaper). Must
    /// comfortably exceed the setup round-trip and refresh_interval.
    Tick reservation_ttl = 0;
    /// Source: while a call is active, re-arm downstream leases with a
    /// REFRESH copy packet at this cadence (recommended: ttl / 3).
    Tick refresh_interval = 0;
    /// Admission: concurrent unresolved setups per source (0 = off).
    unsigned max_inflight = 0;
    /// Admission token bucket: bucket_rate_num tokens per
    /// bucket_rate_den ticks, capped at bucket_burst (num 0 = off).
    std::uint32_t bucket_rate_num = 0;
    Tick bucket_rate_den = 1;
    std::uint32_t bucket_burst = 1;
    /// Admission: shed arrivals while this node holds this many live
    /// call records (0 = off).
    std::size_t shed_above_records = 0;
    /// Admission: shed arrivals while the MemoryBudgetMonitor reports
    /// this node over budget (see obs::PressureBoard).
    std::shared_ptr<const obs::PressureBoard> pressure;
    /// Keep terminal records queryable via state_of (tests want this).
    /// Sustained workloads set false: resolved slots are recycled and
    /// memory stays proportional to concurrent calls.
    bool retain_terminal = true;
    /// Open-loop generated arrivals (paris/workload.hpp).
    WorkloadSpec workload;
};

class CallAgentProtocol final : public node::Protocol {
public:
    const char* name() const override { return "call_agent"; }
    /// `g` must outlive the protocol (route computation source — stands
    /// in for the node's converged topology database).
    CallAgentProtocol(const graph::Graph& g, CallAgentOptions options);
    /// Owning variant for factories whose graph would otherwise dangle
    /// (chaos cases move their Graph into the ClusterCase).
    CallAgentProtocol(std::shared_ptr<const graph::Graph> g, CallAgentOptions options);

    void on_start(node::Context& ctx) override;
    void on_restart(node::Context& ctx) override;
    void on_timer(node::Context& ctx, std::uint64_t cookie) override;
    void on_message(node::Context& ctx, const hw::Delivery& d) override;
    void on_link_state(node::Context& ctx, const node::LocalLink& link, bool up) override;
    std::size_t memory_bytes() const override;

    // ---- observation -------------------------------------------------
    /// State of a call at this node (kIdle if unknown here — including
    /// resolved calls when retain_terminal is off).
    CallState state_of(CallId id) const;
    /// Snapshot of every record held at this node, sorted by id.
    /// Observation only (materializes from the flat index).
    std::vector<CallRecord> call_records() const;
    /// Remaining capacity on the outgoing side of `edge`.
    std::uint32_t free_capacity(EdgeId edge) const;
    /// Held units per edge, sorted by edge; zero-unit entries omitted.
    std::vector<std::pair<EdgeId, std::uint32_t>> reserved_entries() const;
    /// Count of non-terminal records at this node.
    std::size_t live_records() const { return live_records_; }
    /// Source-side tallies (legacy counters; calls() has the full ledger).
    unsigned calls_active() const { return calls_active_; }
    unsigned calls_rejected() const { return calls_rejected_; }
    unsigned calls_failed() const { return calls_failed_; }
    unsigned calls_released() const { return calls_released_; }
    /// This node's call ledger (source-side outcomes + the local reap
    /// count). Fold over nodes with fold_call_stats for the run total.
    const cost::CallStats& stats() const { return stats_; }

    const CallAgentOptions& options() const { return options_; }

private:
    // Timer cookies: kind in the low 4 bits; slot and generation above.
    enum CookieKind : std::uint64_t {
        kCookieRequest = 1,  ///< payload = scripted request index.
        kCookieArrival = 2,  ///< workload generator tick (no payload).
        kCookieHold = 3,     ///< payload = slot/gen.
        kCookieSetup = 4,    ///< payload = slot/gen.
        kCookieRetry = 5,    ///< payload = slot/gen.
        kCookieLease = 6,    ///< payload = slot/gen.
        kCookieRefresh = 7,  ///< payload = slot/gen.
    };

    struct Route {
        std::vector<NodeId> path;
        std::vector<hw::PortId> fwd_ports;
        std::vector<hw::PortId> rev_ports;
    };

    void arrival(node::Context& ctx, const CallRequest& req);
    bool admit(node::Context& ctx);
    void attempt_setup(node::Context& ctx, std::uint32_t slot);
    void retry_or_block(node::Context& ctx, std::uint32_t slot, bool capacity_reject);
    void activate_source(node::Context& ctx, std::uint32_t slot);
    void send_teardown(node::Context& ctx, const CallRecord& rec, bool due_to_reject);
    void teardown(node::Context& ctx, std::uint32_t slot);
    void release_local(CallRecord& rec, CallState final_state);
    /// Terminal transition bookkeeping: live-record count, slot
    /// recycling when retain_terminal is off. `rec` must be terminal.
    void finish_record(std::uint32_t slot);
    bool reserve(EdgeId edge, std::uint32_t demand);
    const Route* route_to(NodeId self, NodeId destination);

    std::uint32_t alloc_slot();
    CallRecord* find_record(CallId id, std::uint32_t* slot_out = nullptr);
    std::uint64_t slot_cookie(CookieKind kind, std::uint32_t slot) const;
    /// Resolves a slot/gen cookie; nullptr when the slot was recycled.
    CallRecord* cookie_record(std::uint64_t cookie, std::uint32_t* slot_out);
    CallId fresh_id(node::Context& ctx);
    void note(node::Context& ctx, const CallRecord& rec, CallEvent e);

    std::shared_ptr<const graph::Graph> graph_owner_;  ///< May be empty.
    const graph::Graph& graph_;
    CallAgentOptions options_;

    util::FlatMap64<std::uint32_t> reserved_;  ///< EdgeId -> units held.
    std::vector<CallRecord> slab_;             ///< Records, slot-addressed.
    std::vector<std::uint32_t> slot_gen_;      ///< Bumped when a slot is freed.
    std::vector<std::uint32_t> free_slots_;
    util::FlatMap64<std::uint32_t> index_;     ///< call key -> slot + 1.

    // Route cache (static topology; rebuilt lazily per incarnation).
    std::unique_ptr<graph::BfsResult> bfs_;
    hw::PortMap ports_;
    util::FlatMap64<std::uint32_t> route_index_;  ///< destination -> route slot + 1.
    std::vector<Route> routes_;

    // Admission state.
    unsigned inflight_setups_ = 0;
    std::size_t live_records_ = 0;
    std::uint64_t bucket_tokens_ = 0;
    std::uint64_t bucket_carry_ = 0;
    Tick bucket_refilled_at_ = 0;
    bool bucket_primed_ = false;

    std::uint64_t next_seq_ = 1;
    unsigned calls_active_ = 0;
    unsigned calls_rejected_ = 0;
    unsigned calls_failed_ = 0;
    unsigned calls_released_ = 0;
    cost::CallStats stats_;
};

/// Factory over a shared graph + per-node request scripts.
node::ProtocolFactory make_call_agents(const graph::Graph& g, std::uint32_t link_capacity,
                                       std::map<NodeId, std::vector<CallRequest>> scripts,
                                       bool selective_copy = true);

/// Factory for sustained workloads: every node runs `base` (typically
/// with base.workload enabled). The graph is held by shared_ptr so the
/// factory survives the caller's scope (exec::ClusterCase moves graphs).
node::ProtocolFactory make_call_workload(std::shared_ptr<const graph::Graph> g,
                                         CallAgentOptions base);

/// Sums every agent's ledger in node order — deterministic regardless of
/// thread/shard counts. Non-CallAgentProtocol nodes contribute nothing.
cost::CallStats fold_call_stats(const node::Cluster& cluster);
cost::CallStats fold_call_stats(const node::ParallelCluster& cluster);

/// 64-bit trace key of a call id (TraceRecord::a of kCallEvent).
inline std::uint64_t call_key(CallId id) {
    return (static_cast<std::uint64_t>(id.source) << 32) | (id.seq & 0xffffffffULL);
}

}  // namespace fastnet::paris
