// Open-loop call workload generation (ROADMAP item 3: PARIS at
// production load).
//
// Each source node draws inter-arrival gaps and holding times from its
// own deterministic Rng stream, so the offered load is independent of
// how the network responds — overload is reached by design, not by
// accident, and the generator never backs off just because setups are
// being rejected (the defining property of an open-loop driver).
//
// Two arrival families cover the classic regimes: Poisson (memoryless,
// the Erlang setting) and Pareto (heavy-tailed, bursty — long silences
// punctuated by arrival clusters that push a link deep past capacity).
// Everything is drawn through Rng::uniform01() and rounded to whole
// ticks, so a given (seed, node) stream reproduces byte-identically
// across thread and shard counts.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace fastnet::paris {

/// Distribution family for inter-arrival gaps and holding times.
enum class ArrivalProcess : std::uint8_t {
    kNone,     ///< No generated arrivals (scripted requests only).
    kPoisson,  ///< Exponential gaps — memoryless arrivals.
    kPareto,   ///< Heavy-tailed gaps — bursty overload.
};

const char* arrival_process_name(ArrivalProcess p);

/// Open-loop workload attached to one call agent. Disabled by default
/// (`arrivals == kNone`): scripted CallRequests keep working unchanged.
struct WorkloadSpec {
    ArrivalProcess arrivals = ArrivalProcess::kNone;
    double mean_interarrival = 0;  ///< Mean ticks between arrivals at one source.
    double arrival_alpha = 1.5;    ///< Pareto tail index for arrivals (> 1).
    ArrivalProcess holding = ArrivalProcess::kPoisson;
    double mean_hold = 200;        ///< Mean holding time in ticks.
    double hold_alpha = 2.5;       ///< Pareto tail index for holding times (> 1).
    Tick first_at = 1;             ///< Earliest generated arrival.
    Tick until = 0;                ///< Generation stops at this tick.
    std::uint32_t demand = 1;      ///< Capacity units per generated call.

    bool enabled() const { return arrivals != ArrivalProcess::kNone && until > 0; }
};

/// One inter-arrival gap, always >= 1 tick.
Tick draw_gap(Rng& rng, const WorkloadSpec& w);

/// One holding time, always >= 1 tick.
Tick draw_hold(Rng& rng, const WorkloadSpec& w);

/// Uniform destination over [0, node_count) excluding `self`.
NodeId draw_destination(Rng& rng, NodeId self, NodeId node_count);

}  // namespace fastnet::paris
