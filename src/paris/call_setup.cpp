#include "paris/call_setup.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "node/parallel_cluster.hpp"

namespace fastnet::paris {
namespace {

/// The single setup packet. Carries the full route specification (node
/// path plus the per-hop port ids in both directions) so that every
/// on-path NCU can derive its own routes to either endpoint.
struct SetupMsg final : hw::TypedPayload<SetupMsg> {
    CallId id;
    NodeId source = kNoNode;
    NodeId destination = kNoNode;
    std::uint32_t demand = 0;
    std::vector<NodeId> path;          ///< path[0] = source, back() = destination.
    std::vector<hw::PortId> fwd_ports; ///< at path[k] toward path[k+1].
    std::vector<hw::PortId> rev_ports; ///< at path[k+1] toward path[k].
    bool selective_copy = true;        ///< Ablation A5 (see options).
};

struct AcceptMsg final : hw::TypedPayload<AcceptMsg> {
    CallId id;
};

struct RejectMsg final : hw::TypedPayload<RejectMsg> {
    CallId id;
    NodeId bottleneck = kNoNode;
};

struct TeardownMsg final : hw::TypedPayload<TeardownMsg> {
    CallId id;
    bool due_to_reject = false;
    bool relay = false;  ///< Hop-by-hop mode: receiver re-sends onward.
};

struct DisconnectMsg final : hw::TypedPayload<DisconnectMsg> {
    CallId id;
};

/// Lease renewal for an active call: one copy packet from the source
/// that re-arms every on-path reservation's expiry (selective-copy mode
/// only — hop-by-hop deployments must keep leases off).
struct RefreshMsg final : hw::TypedPayload<RefreshMsg> {
    CallId id;
};

/// Route from path[i] to the destination; copies at interior nodes so a
/// teardown/disconnect riding it releases every hop in one message.
hw::AnrHeader route_to_destination(const std::vector<NodeId>& path,
                                   const std::vector<hw::PortId>& fwd_ports,
                                   std::size_t i, bool copies) {
    hw::AnrHeader h;
    for (std::size_t k = i; k + 1 < path.size(); ++k) {
        const bool interior = copies && k > i;
        h.push_back(interior ? hw::AnrLabel::copy(fwd_ports[k])
                             : hw::AnrLabel::normal(fwd_ports[k]));
    }
    h.push_back(hw::AnrLabel::normal(hw::kNcuPort));
    return h;
}

/// Route from path[i] back to the source, same copy convention.
hw::AnrHeader route_to_source(const SetupMsg& m, std::size_t i, bool copies) {
    hw::AnrHeader h;
    for (std::size_t k = i; k >= 1; --k) {
        const bool interior = copies && k < i;
        h.push_back(interior ? hw::AnrLabel::copy(m.rev_ports[k - 1])
                             : hw::AnrLabel::normal(m.rev_ports[k - 1]));
    }
    h.push_back(hw::AnrLabel::normal(hw::kNcuPort));
    return h;
}

/// One normal hop from path[i] to path[i+1], into the NCU there.
hw::AnrHeader one_hop_forward(const SetupMsg& m, std::size_t i) {
    return {hw::AnrLabel::normal(m.fwd_ports[i]), hw::AnrLabel::normal(hw::kNcuPort)};
}

// Timer-cookie layout: kind | slot | attempt | generation. The
// generation check makes a cookie from a recycled slot inert; the
// attempt check makes a setup/retry timer from a superseded attempt
// inert (a reject can resolve attempt k while its timer is in flight).
constexpr std::uint64_t kCookieKindBits = 4;
constexpr std::uint64_t kCookieSlotBits = 28;
constexpr std::uint64_t kCookieAttemptBits = 8;
constexpr std::uint64_t cookie_kind(std::uint64_t c) { return c & 0xF; }
constexpr std::uint64_t cookie_slot(std::uint64_t c) {
    return (c >> kCookieKindBits) & ((1ULL << kCookieSlotBits) - 1);
}
constexpr std::uint64_t cookie_attempt(std::uint64_t c) {
    return (c >> (kCookieKindBits + kCookieSlotBits)) & ((1ULL << kCookieAttemptBits) - 1);
}
constexpr std::uint64_t cookie_gen(std::uint64_t c) {
    return c >> (kCookieKindBits + kCookieSlotBits + kCookieAttemptBits);
}

}  // namespace

const char* call_state_name(CallState s) {
    switch (s) {
        case CallState::kIdle: return "idle";
        case CallState::kSettingUp: return "setting-up";
        case CallState::kReserved: return "reserved";
        case CallState::kActive: return "active";
        case CallState::kBackoff: return "backoff";
        case CallState::kRejected: return "rejected";
        case CallState::kReleased: return "released";
        case CallState::kFailed: return "failed";
    }
    return "?";
}

const char* call_event_name(CallEvent e) {
    switch (e) {
        case CallEvent::kOffered: return "offered";
        case CallEvent::kShed: return "shed";
        case CallEvent::kPlaced: return "placed";
        case CallEvent::kReserved: return "reserved";
        case CallEvent::kRejected: return "rejected";
        case CallEvent::kAccepted: return "accepted";
        case CallEvent::kActive: return "active";
        case CallEvent::kTimeout: return "timeout";
        case CallEvent::kRetry: return "retry";
        case CallEvent::kReleased: return "released";
        case CallEvent::kDisconnect: return "disconnect";
        case CallEvent::kExpired: return "expired";
        case CallEvent::kBlocked: return "blocked";
        case CallEvent::kRefresh: return "refresh";
    }
    return "?";
}

CallAgentProtocol::CallAgentProtocol(const graph::Graph& g, CallAgentOptions options)
    : graph_(g), options_(std::move(options)) {}

CallAgentProtocol::CallAgentProtocol(std::shared_ptr<const graph::Graph> g,
                                     CallAgentOptions options)
    : graph_owner_(std::move(g)), graph_(*graph_owner_), options_(std::move(options)) {}

// ---- bookkeeping primitives ----------------------------------------------

std::uint32_t CallAgentProtocol::alloc_slot() {
    if (!free_slots_.empty()) {
        const std::uint32_t slot = free_slots_.back();
        free_slots_.pop_back();
        slab_[slot] = CallRecord{};
        return slot;
    }
    FASTNET_ENSURES_MSG(slab_.size() < (1ULL << 28), "call slab exceeds cookie range");
    slab_.emplace_back();
    slot_gen_.push_back(0);
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

CallRecord* CallAgentProtocol::find_record(CallId id, std::uint32_t* slot_out) {
    const std::uint32_t* p = index_.find(call_key(id));
    if (p == nullptr) return nullptr;
    const std::uint32_t slot = *p - 1;
    if (slot_out) *slot_out = slot;
    return &slab_[slot];
}

std::uint64_t CallAgentProtocol::slot_cookie(CookieKind kind, std::uint32_t slot) const {
    return static_cast<std::uint64_t>(kind) |
           (static_cast<std::uint64_t>(slot) << kCookieKindBits) |
           (static_cast<std::uint64_t>(slab_[slot].attempts)
            << (kCookieKindBits + kCookieSlotBits)) |
           (static_cast<std::uint64_t>(slot_gen_[slot] & 0xffffff)
            << (kCookieKindBits + kCookieSlotBits + kCookieAttemptBits));
}

CallRecord* CallAgentProtocol::cookie_record(std::uint64_t cookie, std::uint32_t* slot_out) {
    const std::uint64_t slot = cookie_slot(cookie);
    if (slot >= slab_.size()) return nullptr;
    if (cookie_gen(cookie) != (slot_gen_[slot] & 0xffffff)) return nullptr;
    if (slot_out) *slot_out = static_cast<std::uint32_t>(slot);
    return &slab_[slot];
}

CallId CallAgentProtocol::fresh_id(node::Context& ctx) {
    // The incarnation rides the sequence's high bits: a restarted source
    // can never mint an id that a transit node still has a record for.
    return CallId{ctx.self(), (ctx.incarnation() << 24) | next_seq_++};
}

void CallAgentProtocol::note(node::Context& ctx, const CallRecord& rec, CallEvent e) {
    ctx.record(sim::TraceKind::kCallEvent, call_key(rec.id),
               static_cast<std::uint64_t>(e), rec.attempts);
}

CallState CallAgentProtocol::state_of(CallId id) const {
    const std::uint32_t* p = index_.find(call_key(id));
    return p == nullptr ? CallState::kIdle : slab_[*p - 1].state;
}

std::vector<CallRecord> CallAgentProtocol::call_records() const {
    std::vector<CallRecord> out;
    out.reserve(index_.size());
    for (const auto& e : index_.raw_entries())
        if (e.occupied) out.push_back(slab_[e.value - 1]);
    std::sort(out.begin(), out.end(),
              [](const CallRecord& a, const CallRecord& b) { return a.id < b.id; });
    return out;
}

std::uint32_t CallAgentProtocol::free_capacity(EdgeId edge) const {
    const std::uint32_t* used = reserved_.find(edge);
    return options_.link_capacity - (used == nullptr ? 0 : *used);
}

std::vector<std::pair<EdgeId, std::uint32_t>> CallAgentProtocol::reserved_entries() const {
    std::vector<std::pair<EdgeId, std::uint32_t>> out;
    for (const auto& e : reserved_.raw_entries())
        if (e.occupied && e.value > 0)
            out.emplace_back(static_cast<EdgeId>(e.key), e.value);
    std::sort(out.begin(), out.end());
    return out;
}

bool CallAgentProtocol::reserve(EdgeId edge, std::uint32_t demand) {
    if (free_capacity(edge) < demand) return false;
    reserved_[edge] += demand;
    return true;
}

void CallAgentProtocol::release_local(CallRecord& rec, CallState final_state) {
    if (rec.reserved_edge != kNoEdge) {
        std::uint32_t* held = reserved_.find(rec.reserved_edge);
        FASTNET_ENSURES(held != nullptr && *held >= rec.demand);
        *held -= rec.demand;
        rec.reserved_edge = kNoEdge;
    }
    rec.state = final_state;
}

void CallAgentProtocol::finish_record(std::uint32_t slot) {
    CallRecord& rec = slab_[slot];
    FASTNET_EXPECTS(call_state_terminal(rec.state));
    FASTNET_EXPECTS(live_records_ > 0);
    --live_records_;
    if (options_.retain_terminal) return;  // keep queryable via state_of
    index_.erase(call_key(rec.id));
    ++slot_gen_[slot];  // pending cookies for this slot go inert
    slab_[slot] = CallRecord{};
    free_slots_.push_back(slot);
}

const CallAgentProtocol::Route* CallAgentProtocol::route_to(NodeId self,
                                                            NodeId destination) {
    if (const std::uint32_t* p = route_index_.find(destination))
        return *p == 0 ? nullptr : &routes_[*p - 1];
    // Routes come from the node's (converged) topology knowledge: one
    // min-hop BFS, cached — the topology graph is static; reacting to
    // link-state churn is the routing layer's job, not the call agent's
    // (legacy behaviour: retries re-walk the same path until the link
    // heals or the budget runs out).
    if (!bfs_) {
        bfs_ = std::make_unique<graph::BfsResult>(graph::bfs(graph_, self));
        ports_ = hw::canonical_ports(graph_);
    }
    if (bfs_->dist[destination] == graph::BfsResult::kUnreached) {
        route_index_[destination] = 0;
        return nullptr;
    }
    Route rt;
    for (NodeId v = destination; v != kNoNode; v = bfs_->parent[v]) rt.path.push_back(v);
    std::reverse(rt.path.begin(), rt.path.end());
    for (std::size_t k = 0; k + 1 < rt.path.size(); ++k) {
        rt.fwd_ports.push_back(ports_(rt.path[k], rt.path[k + 1]));
        rt.rev_ports.push_back(ports_(rt.path[k + 1], rt.path[k]));
    }
    routes_.push_back(std::move(rt));
    route_index_[destination] = static_cast<std::uint32_t>(routes_.size());
    return &routes_.back();
}

// ---- lifecycle -----------------------------------------------------------

void CallAgentProtocol::on_start(node::Context& ctx) {
    for (std::size_t i = 0; i < options_.requests.size(); ++i)
        ctx.set_timer(options_.requests[i].at,
                      kCookieRequest | (static_cast<std::uint64_t>(i) << kCookieKindBits));
    const WorkloadSpec& w = options_.workload;
    if (w.enabled()) {
        const Tick delay = w.first_at > ctx.now() ? w.first_at - ctx.now() : 0;
        ctx.set_timer(delay, kCookieArrival);
    }
}

void CallAgentProtocol::on_restart(node::Context& ctx) {
    // A crash wiped every record and reservation this node held (the
    // downstream leases of its calls expire on their own). Scripted
    // requests are not replayed — they were one-shots relative to the
    // original start — but an open-loop generator resumes immediately:
    // offered load does not care that the node rebooted.
    const WorkloadSpec& w = options_.workload;
    if (w.enabled() && ctx.now() <= w.until) ctx.set_timer(0, kCookieArrival);
}

// ---- admission and arrivals ----------------------------------------------

bool CallAgentProtocol::admit(node::Context& ctx) {
    if (options_.pressure && options_.pressure->over(ctx.self())) return false;
    if (options_.shed_above_records != 0 && live_records_ >= options_.shed_above_records)
        return false;
    if (options_.max_inflight != 0 && inflight_setups_ >= options_.max_inflight)
        return false;
    if (options_.bucket_rate_num != 0) {
        // Integer token bucket with remainder carry: tokens accrue at
        // exactly rate_num/rate_den per tick, capped at bucket_burst.
        const Tick now = ctx.now();
        if (!bucket_primed_) {
            bucket_primed_ = true;
            bucket_tokens_ = options_.bucket_burst;
            bucket_refilled_at_ = now;
        } else if (now > bucket_refilled_at_) {
            const std::uint64_t accrued =
                bucket_carry_ + static_cast<std::uint64_t>(now - bucket_refilled_at_) *
                                    options_.bucket_rate_num;
            const Tick den = options_.bucket_rate_den > 0 ? options_.bucket_rate_den : 1;
            bucket_tokens_ += accrued / static_cast<std::uint64_t>(den);
            bucket_carry_ = accrued % static_cast<std::uint64_t>(den);
            if (bucket_tokens_ > options_.bucket_burst) {
                bucket_tokens_ = options_.bucket_burst;
                bucket_carry_ = 0;
            }
            bucket_refilled_at_ = now;
        }
        if (bucket_tokens_ == 0) return false;
        --bucket_tokens_;
    }
    return true;
}

void CallAgentProtocol::arrival(node::Context& ctx, const CallRequest& req) {
    const NodeId self = ctx.self();
    FASTNET_EXPECTS_MSG(req.destination != self, "call to self");
    FASTNET_EXPECTS(req.destination < graph_.node_count());

    ++stats_.offered;
    const CallId id = fresh_id(ctx);
    ctx.record(sim::TraceKind::kCallEvent, call_key(id),
               static_cast<std::uint64_t>(CallEvent::kOffered), 0);

    if (!admit(ctx)) {
        ++stats_.shed;
        ctx.record(sim::TraceKind::kCallEvent, call_key(id),
                   static_cast<std::uint64_t>(CallEvent::kShed), 0);
        return;
    }
    if (route_to(self, req.destination) == nullptr) {
        // Unreachable: rejected locally, no record (legacy behaviour).
        calls_rejected_ += 1;
        ++stats_.blocked;
        ctx.record(sim::TraceKind::kCallEvent, call_key(id),
                   static_cast<std::uint64_t>(CallEvent::kBlocked), 0);
        return;
    }

    const std::uint32_t slot = alloc_slot();
    CallRecord& rec = slab_[slot];
    rec.id = id;
    rec.source = self;
    rec.destination = req.destination;
    rec.demand = req.demand;
    rec.requested_at = ctx.now();
    rec.hold_time = req.hold_time;
    index_[call_key(id)] = slot + 1;
    ++live_records_;
    attempt_setup(ctx, slot);
}

void CallAgentProtocol::attempt_setup(node::Context& ctx, std::uint32_t slot) {
    CallRecord& rec = slab_[slot];
    if (rec.attempts < 255) ++rec.attempts;
    ++stats_.placed;
    if (rec.attempts > 1) {
        // Re-key under a fresh wire id so a straggler ACCEPT or REJECT
        // from the abandoned attempt can never resolve this one.
        ++stats_.retries;
        index_.erase(call_key(rec.id));
        rec.id = fresh_id(ctx);
        index_[call_key(rec.id)] = slot + 1;
    }

    const Route* rt = route_to(ctx.self(), rec.destination);
    FASTNET_ENSURES(rt != nullptr);  // reachability checked at arrival

    auto msg = std::make_shared<SetupMsg>();
    msg->id = rec.id;
    msg->source = rec.source;
    msg->destination = rec.destination;
    msg->demand = rec.demand;
    msg->path = rt->path;
    msg->fwd_ports = rt->fwd_ports;
    msg->rev_ports = rt->rev_ports;
    msg->selective_copy = options_.selective_copy;

    rec.to_destination =
        route_to_destination(rt->path, rt->fwd_ports, 0, options_.selective_copy);
    rec.to_source = {};  // we are the source

    const EdgeId out = graph_.find_edge(rt->path[0], rt->path[1]);
    if (options_.setup_timeout > 0 || options_.max_retries > 0) {
        // Don't launch into a first hop the data-link layer already
        // reports down — that setup can only time out. Transient, so it
        // burns a retry rather than counting as a capacity reject.
        for (const node::LocalLink& l : ctx.links()) {
            if (l.edge != out) continue;
            if (!l.active) {
                retry_or_block(ctx, slot, /*capacity_reject=*/false);
                return;
            }
            break;
        }
    }
    if (!reserve(out, rec.demand)) {
        retry_or_block(ctx, slot, /*capacity_reject=*/true);
        return;
    }
    rec.reserved_edge = out;
    rec.state = CallState::kSettingUp;
    ++inflight_setups_;
    note(ctx, rec, CallEvent::kPlaced);
    if (options_.selective_copy) {
        // One packet; copy ids fan it out to every on-path NCU at once.
        ctx.send(rec.to_destination, msg);
    } else {
        // Pre-PARIS software path: forward to the next hop only.
        ctx.send(one_hop_forward(*msg, 0), msg);
    }
    if (options_.setup_timeout > 0)
        ctx.set_timer(options_.setup_timeout, slot_cookie(kCookieSetup, slot));
}

void CallAgentProtocol::retry_or_block(node::Context& ctx, std::uint32_t slot,
                                       bool capacity_reject) {
    (void)capacity_reject;
    CallRecord& rec = slab_[slot];
    FASTNET_EXPECTS(rec.reserved_edge == kNoEdge);  // caller released
    if (rec.attempts <= options_.max_retries) {
        rec.state = CallState::kBackoff;
        note(ctx, rec, CallEvent::kRetry);
        const unsigned prior = rec.attempts > 0 ? rec.attempts - 1u : 0u;
        const unsigned shift = prior < 20u ? prior : 20u;
        Tick delay = options_.retry_backoff << shift;
        if (options_.retry_jitter > 0)
            delay += static_cast<Tick>(
                ctx.rng().below(static_cast<std::uint64_t>(options_.retry_jitter) + 1));
        if (delay < 1) delay = 1;
        ctx.set_timer(delay, slot_cookie(kCookieRetry, slot));
        return;
    }
    calls_rejected_ += 1;
    ++stats_.blocked;
    stats_.retries_per_call.add(rec.attempts > 0 ? rec.attempts - 1 : 0);
    rec.state = CallState::kRejected;
    note(ctx, rec, CallEvent::kBlocked);
    finish_record(slot);
}

void CallAgentProtocol::activate_source(node::Context& ctx, std::uint32_t slot) {
    CallRecord& rec = slab_[slot];
    FASTNET_EXPECTS(inflight_setups_ > 0);
    --inflight_setups_;
    rec.state = CallState::kActive;
    calls_active_ += 1;
    ++stats_.accepted;
    stats_.setup_latency.add(static_cast<std::uint64_t>(ctx.now() - rec.requested_at));
    stats_.retries_per_call.add(rec.attempts > 0 ? rec.attempts - 1 : 0);
    note(ctx, rec, CallEvent::kActive);
    if (rec.hold_time >= 0) ctx.set_timer(rec.hold_time, slot_cookie(kCookieHold, slot));
    if (options_.refresh_interval > 0 && options_.selective_copy)
        ctx.set_timer(options_.refresh_interval, slot_cookie(kCookieRefresh, slot));
}

void CallAgentProtocol::send_teardown(node::Context& ctx, const CallRecord& rec,
                                      bool due_to_reject) {
    auto msg = std::make_shared<TeardownMsg>();
    msg->id = rec.id;
    msg->due_to_reject = due_to_reject;
    msg->relay = !options_.selective_copy;
    if (options_.selective_copy) {
        // One copy packet releases every hop at once.
        ctx.send(rec.to_destination, msg);
    } else {
        // Hop-by-hop: next NCU releases, then re-sends onward.
        ctx.send({rec.to_destination.front(), hw::AnrLabel::normal(hw::kNcuPort)},
                 msg);
    }
}

void CallAgentProtocol::teardown(node::Context& ctx, std::uint32_t slot) {
    CallRecord& rec = slab_[slot];
    send_teardown(ctx, rec, /*due_to_reject=*/false);
    if (rec.state == CallState::kActive) calls_active_ -= 1;
    release_local(rec, CallState::kReleased);
    calls_released_ += 1;
    ++stats_.completed;
    note(ctx, rec, CallEvent::kReleased);
    finish_record(slot);
}

// ---- timers --------------------------------------------------------------

void CallAgentProtocol::on_timer(node::Context& ctx, std::uint64_t cookie) {
    switch (cookie_kind(cookie)) {
        case kCookieRequest: {
            const std::uint64_t i = cookie >> kCookieKindBits;
            FASTNET_EXPECTS(i < options_.requests.size());
            arrival(ctx, options_.requests[i]);
            return;
        }
        case kCookieArrival: {
            const WorkloadSpec& w = options_.workload;
            if (ctx.now() > w.until) return;
            Rng& rng = ctx.rng();
            CallRequest req;
            req.destination = draw_destination(rng, ctx.self(), graph_.node_count());
            req.demand = w.demand;
            req.hold_time = draw_hold(rng, w);
            arrival(ctx, req);
            const Tick gap = draw_gap(rng, w);
            if (ctx.now() + gap <= w.until) ctx.set_timer(gap, kCookieArrival);
            return;
        }
        default: break;
    }

    std::uint32_t slot = 0;
    CallRecord* rec = cookie_record(cookie, &slot);
    if (rec == nullptr) return;  // slot recycled since the timer was set
    switch (cookie_kind(cookie)) {
        case kCookieHold:
            if (rec->state == CallState::kActive && rec->source == ctx.self())
                teardown(ctx, slot);
            return;
        case kCookieSetup:
            if (rec->state != CallState::kSettingUp) return;
            if (cookie_attempt(cookie) != rec->attempts) return;  // superseded attempt
            ++stats_.timeouts;
            note(ctx, *rec, CallEvent::kTimeout);
            // REJECT-equivalent: tear the partial reservation down
            // everywhere, then retry or give up.
            send_teardown(ctx, *rec, /*due_to_reject=*/true);
            release_local(*rec, rec->state);
            FASTNET_EXPECTS(inflight_setups_ > 0);
            --inflight_setups_;
            retry_or_block(ctx, slot, /*capacity_reject=*/false);
            return;
        case kCookieRetry:
            if (rec->state != CallState::kBackoff) return;
            if (cookie_attempt(cookie) != rec->attempts) return;
            attempt_setup(ctx, slot);
            return;
        case kCookieLease: {
            // The orphan reaper: a non-source hop whose lease lapsed
            // without a refresh releases locally — the teardown that
            // should have arrived was lost.
            if (call_state_terminal(rec->state) || rec->state == CallState::kIdle) return;
            if (rec->source == ctx.self()) return;
            if (ctx.now() >= rec->lease_deadline) {
                ++stats_.reaped;
                note(ctx, *rec, CallEvent::kExpired);
                release_local(*rec, CallState::kFailed);
                finish_record(slot);
                return;
            }
            ctx.set_timer(rec->lease_deadline - ctx.now(), slot_cookie(kCookieLease, slot));
            return;
        }
        case kCookieRefresh:
            if (rec->state != CallState::kActive || rec->source != ctx.self()) return;
            {
                auto msg = std::make_shared<RefreshMsg>();
                msg->id = rec->id;
                ctx.send(rec->to_destination, msg);
                note(ctx, *rec, CallEvent::kRefresh);
                ctx.set_timer(options_.refresh_interval, slot_cookie(kCookieRefresh, slot));
            }
            return;
        default: return;
    }
}

// ---- messages ------------------------------------------------------------

void CallAgentProtocol::on_message(node::Context& ctx, const hw::Delivery& d) {
    const NodeId self = ctx.self();
    if (const auto* setup = hw::payload_as<SetupMsg>(d)) {
        if (find_record(setup->id) != nullptr) return;  // duplicate copy (dup_ppm)
        const auto it = std::find(setup->path.begin(), setup->path.end(), self);
        FASTNET_EXPECTS_MSG(it != setup->path.end(), "setup strayed off its path");
        const std::size_t i = static_cast<std::size_t>(it - setup->path.begin());

        const std::uint32_t slot = alloc_slot();
        CallRecord& rec = slab_[slot];
        rec.id = setup->id;
        rec.source = setup->source;
        rec.destination = setup->destination;
        rec.demand = setup->demand;
        rec.to_source = route_to_source(*setup, i, setup->selective_copy);
        index_[call_key(rec.id)] = slot + 1;
        ++live_records_;
        if (options_.reservation_ttl > 0) {
            rec.lease_deadline = ctx.now() + options_.reservation_ttl;
            ctx.set_timer(options_.reservation_ttl, slot_cookie(kCookieLease, slot));
        }
        if (self == setup->destination) {
            auto acc = std::make_shared<AcceptMsg>();
            acc->id = setup->id;
            ctx.send(rec.to_source, acc);
            rec.state = CallState::kActive;
            note(ctx, rec, CallEvent::kAccepted);
            return;
        }
        rec.to_destination =
            route_to_destination(setup->path, setup->fwd_ports, i, setup->selective_copy);
        const EdgeId out = graph_.find_edge(setup->path[i], setup->path[i + 1]);
        if (!reserve(out, setup->demand)) {
            rec.state = CallState::kRejected;
            auto rej = std::make_shared<RejectMsg>();
            rej->id = setup->id;
            rej->bottleneck = self;
            ctx.send(rec.to_source, rej);
            note(ctx, rec, CallEvent::kRejected);
            finish_record(slot);
            return;
        }
        rec.reserved_edge = out;
        rec.state = CallState::kReserved;
        note(ctx, rec, CallEvent::kReserved);
        if (!setup->selective_copy) {
            // Hop-by-hop mode: this NCU re-sends the setup onward.
            ctx.send(one_hop_forward(*setup, i), std::make_shared<SetupMsg>(*setup));
        }
        return;
    }
    if (const auto* acc = hw::payload_as<AcceptMsg>(d)) {
        std::uint32_t slot = 0;
        CallRecord* rec = find_record(acc->id, &slot);
        if (rec == nullptr) return;
        if (rec->source == self) {
            if (rec->state == CallState::kSettingUp) activate_source(ctx, slot);
            // (A reject may have arrived first; then we stay rejected.)
        } else if (rec->state == CallState::kReserved) {
            rec->state = CallState::kActive;  // intermediate copy of the accept
            if (options_.reservation_ttl > 0)
                rec->lease_deadline = ctx.now() + options_.reservation_ttl;
        }
        return;
    }
    if (const auto* rej = hw::payload_as<RejectMsg>(d)) {
        std::uint32_t slot = 0;
        CallRecord* rec = find_record(rej->id, &slot);
        if (rec == nullptr || rec->source != self) return;
        if (rec->state == CallState::kSettingUp) {
            note(ctx, *rec, CallEvent::kRejected);
            // Release the partial reservation everywhere downstream.
            send_teardown(ctx, *rec, /*due_to_reject=*/true);
            release_local(*rec, rec->state);
            FASTNET_EXPECTS(inflight_setups_ > 0);
            --inflight_setups_;
            retry_or_block(ctx, slot, /*capacity_reject=*/true);
        } else if (rec->state == CallState::kActive) {
            // The selective-copy race: the destination's copy of the
            // setup peeled off before the bottleneck's reject stopped
            // anything, so ACCEPT and REJECT both raced to us and the
            // accept won. The reject still stands — tear down. In the
            // ledger this call was accepted, then lost: failed.
            calls_active_ -= 1;
            calls_rejected_ += 1;
            ++stats_.failed;
            send_teardown(ctx, *rec, /*due_to_reject=*/true);
            release_local(*rec, CallState::kRejected);
            note(ctx, *rec, CallEvent::kRejected);
            finish_record(slot);
        }
        return;
    }
    if (const auto* td = hw::payload_as<TeardownMsg>(d)) {
        std::uint32_t slot = 0;
        CallRecord* rec = find_record(td->id, &slot);
        if (rec == nullptr) return;
        const bool was_terminal = call_state_terminal(rec->state);
        const bool had_more = td->relay && self != rec->destination &&
                              !rec->to_destination.empty() &&
                              (rec->state == CallState::kReserved ||
                               rec->state == CallState::kActive);
        if (had_more) {
            // Hop-by-hop mode: pass the teardown onward before releasing.
            hw::AnrHeader hop{rec->to_destination.front(),
                              hw::AnrLabel::normal(hw::kNcuPort)};
            ctx.send(std::move(hop), std::make_shared<TeardownMsg>(*td));
        }
        release_local(*rec,
                      td->due_to_reject ? CallState::kRejected : CallState::kReleased);
        if (!was_terminal) {
            note(ctx, *rec,
                 td->due_to_reject ? CallEvent::kRejected : CallEvent::kReleased);
            finish_record(slot);
        }
        return;
    }
    if (const auto* dis = hw::payload_as<DisconnectMsg>(d)) {
        std::uint32_t slot = 0;
        CallRecord* rec = find_record(dis->id, &slot);
        if (rec == nullptr) return;
        if (call_state_terminal(rec->state)) return;
        if (rec->source == self && rec->state == CallState::kSettingUp &&
            options_.max_retries > 0) {
            // The path died under our setup: transient, retry elsewhere
            // in time (the downstream side is already releasing itself).
            note(ctx, *rec, CallEvent::kDisconnect);
            release_local(*rec, rec->state);
            FASTNET_EXPECTS(inflight_setups_ > 0);
            --inflight_setups_;
            retry_or_block(ctx, slot, /*capacity_reject=*/false);
            return;
        }
        if (rec->source == self &&
            (rec->state == CallState::kActive || rec->state == CallState::kSettingUp)) {
            if (rec->state == CallState::kActive) {
                calls_active_ -= 1;
            } else {
                FASTNET_EXPECTS(inflight_setups_ > 0);
                --inflight_setups_;
            }
            calls_failed_ += 1;
            ++stats_.failed;
        }
        release_local(*rec, CallState::kFailed);
        note(ctx, *rec, CallEvent::kDisconnect);
        finish_record(slot);
        return;
    }
    if (const auto* rf = hw::payload_as<RefreshMsg>(d)) {
        CallRecord* rec = find_record(rf->id);
        if (rec == nullptr || call_state_terminal(rec->state)) return;
        if (rec->source == self) return;
        if (options_.reservation_ttl > 0) {
            rec->lease_deadline = ctx.now() + options_.reservation_ttl;
            note(ctx, *rec, CallEvent::kRefresh);
        }
        return;
    }
    FASTNET_ENSURES_MSG(false, "unexpected payload in call agent");
}

// ---- link events ---------------------------------------------------------

void CallAgentProtocol::on_link_state(node::Context& ctx, const node::LocalLink& link,
                                      bool up) {
    if (up) return;
    // Any call whose route crosses the dead link at this node is lost.
    // Slot order is allocation order — deterministic for a given event
    // history. (kBackoff records hold nothing and survive: their retry
    // re-walks the path once the backoff expires.)
    for (std::uint32_t slot = 0; slot < slab_.size(); ++slot) {
        CallRecord& rec = slab_[slot];
        if (rec.state != CallState::kReserved && rec.state != CallState::kActive &&
            rec.state != CallState::kSettingUp)
            continue;
        const bool outgoing_died = rec.reserved_edge == link.edge;
        // Incoming side: the dead link is the hop that reaches us; we can
        // still reach the destination side.
        const bool incoming_died =
            !outgoing_died && !rec.to_source.empty() &&
            rec.source != ctx.self() &&
            rec.to_source.front().port() == link.port;
        if (!outgoing_died && !incoming_died) continue;

        if (rec.source == ctx.self() && rec.state == CallState::kSettingUp &&
            options_.max_retries > 0) {
            // Source with its first hop cut mid-setup: the downstream
            // side of the cut disconnects everything it can still reach;
            // we release our hop and back off instead of dying.
            note(ctx, rec, CallEvent::kDisconnect);
            release_local(rec, rec.state);
            FASTNET_EXPECTS(inflight_setups_ > 0);
            --inflight_setups_;
            retry_or_block(ctx, slot, /*capacity_reject=*/false);
            continue;
        }

        auto dis = std::make_shared<DisconnectMsg>();
        dis->id = rec.id;
        if (outgoing_died && !rec.to_source.empty() && rec.source != ctx.self()) {
            ctx.send(rec.to_source, dis);
        } else if (outgoing_died && rec.source == ctx.self()) {
            // We are the source: nothing upstream to tell.
        } else if (incoming_died && !rec.to_destination.empty()) {
            ctx.send(rec.to_destination, dis);
        }
        if (rec.source == ctx.self() &&
            (rec.state == CallState::kActive || rec.state == CallState::kSettingUp)) {
            if (rec.state == CallState::kActive) {
                calls_active_ -= 1;
            } else {
                FASTNET_EXPECTS(inflight_setups_ > 0);
                --inflight_setups_;
            }
            calls_failed_ += 1;
            ++stats_.failed;
        }
        release_local(rec, CallState::kFailed);
        note(ctx, rec, CallEvent::kDisconnect);
        finish_record(slot);
    }
}

std::size_t CallAgentProtocol::memory_bytes() const {
    std::size_t b = sizeof(*this);
    b += reserved_.memory_bytes() + index_.memory_bytes() + route_index_.memory_bytes();
    b += slab_.capacity() * sizeof(CallRecord);
    b += slot_gen_.capacity() * sizeof(std::uint32_t);
    b += free_slots_.capacity() * sizeof(std::uint32_t);
    for (const CallRecord& r : slab_)
        b += (r.to_source.capacity() + r.to_destination.capacity()) * sizeof(hw::AnrLabel);
    b += routes_.capacity() * sizeof(Route);
    for (const Route& rt : routes_)
        b += rt.path.capacity() * sizeof(NodeId) +
             (rt.fwd_ports.capacity() + rt.rev_ports.capacity()) * sizeof(hw::PortId);
    if (bfs_)
        b += sizeof(graph::BfsResult) + bfs_->parent.capacity() * sizeof(NodeId) +
             bfs_->dist.capacity() * sizeof(unsigned);
    b += options_.requests.capacity() * sizeof(CallRequest);
    return b;
}

// ---- factories and folding -----------------------------------------------

node::ProtocolFactory make_call_agents(const graph::Graph& g, std::uint32_t link_capacity,
                                       std::map<NodeId, std::vector<CallRequest>> scripts,
                                       bool selective_copy) {
    return [&g, link_capacity, scripts = std::move(scripts), selective_copy](NodeId u) {
        CallAgentOptions opt;
        opt.link_capacity = link_capacity;
        opt.selective_copy = selective_copy;
        if (const auto it = scripts.find(u); it != scripts.end()) opt.requests = it->second;
        return std::make_unique<CallAgentProtocol>(g, opt);
    };
}

node::ProtocolFactory make_call_workload(std::shared_ptr<const graph::Graph> g,
                                         CallAgentOptions base) {
    return [g = std::move(g), base = std::move(base)](NodeId) {
        return std::make_unique<CallAgentProtocol>(g, base);
    };
}

namespace {

template <typename ClusterT>
cost::CallStats fold_impl(const ClusterT& cluster) {
    cost::CallStats total;
    for (NodeId u = 0; u < cluster.node_count(); ++u) {
        const auto* agent =
            dynamic_cast<const CallAgentProtocol*>(&cluster.protocol(u));
        if (agent != nullptr) total.merge_from(agent->stats());
    }
    return total;
}

}  // namespace

cost::CallStats fold_call_stats(const node::Cluster& cluster) {
    return fold_impl(cluster);
}

cost::CallStats fold_call_stats(const node::ParallelCluster& cluster) {
    return fold_impl(cluster);
}

}  // namespace fastnet::paris
