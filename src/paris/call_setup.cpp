#include "paris/call_setup.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace fastnet::paris {
namespace {

/// The single setup packet. Carries the full route specification (node
/// path plus the per-hop port ids in both directions) so that every
/// on-path NCU can derive its own routes to either endpoint.
struct SetupMsg final : hw::TypedPayload<SetupMsg> {
    CallId id;
    NodeId source = kNoNode;
    NodeId destination = kNoNode;
    std::uint32_t demand = 0;
    std::vector<NodeId> path;          ///< path[0] = source, back() = destination.
    std::vector<hw::PortId> fwd_ports; ///< at path[k] toward path[k+1].
    std::vector<hw::PortId> rev_ports; ///< at path[k+1] toward path[k].
    bool selective_copy = true;        ///< Ablation A5 (see options).
};

struct AcceptMsg final : hw::TypedPayload<AcceptMsg> {
    CallId id;
};

struct RejectMsg final : hw::TypedPayload<RejectMsg> {
    CallId id;
    NodeId bottleneck = kNoNode;
};

struct TeardownMsg final : hw::TypedPayload<TeardownMsg> {
    CallId id;
    bool due_to_reject = false;
    bool relay = false;  ///< Hop-by-hop mode: receiver re-sends onward.
};

struct DisconnectMsg final : hw::TypedPayload<DisconnectMsg> {
    CallId id;
};

/// Route from path[i] to the destination; copies at interior nodes so a
/// teardown/disconnect riding it releases every hop in one message.
hw::AnrHeader route_to_destination(const SetupMsg& m, std::size_t i, bool copies) {
    hw::AnrHeader h;
    for (std::size_t k = i; k + 1 < m.path.size(); ++k) {
        const bool interior = copies && k > i;
        h.push_back(interior ? hw::AnrLabel::copy(m.fwd_ports[k])
                             : hw::AnrLabel::normal(m.fwd_ports[k]));
    }
    h.push_back(hw::AnrLabel::normal(hw::kNcuPort));
    return h;
}

/// Route from path[i] back to the source, same copy convention.
hw::AnrHeader route_to_source(const SetupMsg& m, std::size_t i, bool copies) {
    hw::AnrHeader h;
    for (std::size_t k = i; k >= 1; --k) {
        const bool interior = copies && k < i;
        h.push_back(interior ? hw::AnrLabel::copy(m.rev_ports[k - 1])
                             : hw::AnrLabel::normal(m.rev_ports[k - 1]));
    }
    h.push_back(hw::AnrLabel::normal(hw::kNcuPort));
    return h;
}

/// One normal hop from path[i] to path[i+1], into the NCU there.
hw::AnrHeader one_hop_forward(const SetupMsg& m, std::size_t i) {
    return {hw::AnrLabel::normal(m.fwd_ports[i]), hw::AnrLabel::normal(hw::kNcuPort)};
}

}  // namespace

const char* call_state_name(CallState s) {
    switch (s) {
        case CallState::kIdle: return "idle";
        case CallState::kSettingUp: return "setting-up";
        case CallState::kReserved: return "reserved";
        case CallState::kActive: return "active";
        case CallState::kRejected: return "rejected";
        case CallState::kReleased: return "released";
        case CallState::kFailed: return "failed";
    }
    return "?";
}

CallAgentProtocol::CallAgentProtocol(const graph::Graph& g, CallAgentOptions options)
    : graph_(g), options_(std::move(options)) {}

CallState CallAgentProtocol::state_of(CallId id) const {
    const auto it = records_.find(id);
    return it == records_.end() ? CallState::kIdle : it->second.state;
}

std::uint32_t CallAgentProtocol::free_capacity(EdgeId edge) const {
    const auto it = reserved_.find(edge);
    const std::uint32_t used = it == reserved_.end() ? 0 : it->second;
    return options_.link_capacity - used;
}

bool CallAgentProtocol::reserve(EdgeId edge, std::uint32_t demand) {
    if (free_capacity(edge) < demand) return false;
    reserved_[edge] += demand;
    return true;
}

void CallAgentProtocol::on_start(node::Context& ctx) {
    for (const CallRequest& req : options_.requests) {
        const std::uint64_t cookie = next_cookie_++;
        pending_[cookie] = req;
        ctx.set_timer(req.at, cookie);
    }
}

void CallAgentProtocol::on_timer(node::Context& ctx, std::uint64_t cookie) {
    if (const auto it = pending_.find(cookie); it != pending_.end()) {
        const CallRequest req = it->second;
        pending_.erase(it);
        place_call(ctx, req);
        return;
    }
    if (const auto it = hold_timers_.find(cookie); it != hold_timers_.end()) {
        const CallId id = it->second;
        hold_timers_.erase(it);
        const auto rec = records_.find(id);
        if (rec != records_.end() && rec->second.state == CallState::kActive)
            teardown(ctx, rec->second);
        return;
    }
}

void CallAgentProtocol::place_call(node::Context& ctx, const CallRequest& req) {
    const NodeId self = ctx.self();
    FASTNET_EXPECTS_MSG(req.destination != self, "call to self");
    FASTNET_EXPECTS(req.destination < graph_.node_count());

    auto msg = std::make_shared<SetupMsg>();
    msg->id = CallId{self, next_seq_++};
    msg->source = self;
    msg->destination = req.destination;
    msg->demand = req.demand;
    msg->selective_copy = options_.selective_copy;

    // Route from the node's (converged) topology knowledge: min-hop.
    const graph::BfsResult bfs = graph::bfs(graph_, self);
    if (bfs.dist[req.destination] == graph::BfsResult::kUnreached) {
        calls_rejected_ += 1;
        return;
    }
    for (NodeId v = req.destination; v != kNoNode; v = bfs.parent[v])
        msg->path.push_back(v);
    std::reverse(msg->path.begin(), msg->path.end());
    const hw::PortMap ports = hw::canonical_ports(graph_);
    for (std::size_t k = 0; k + 1 < msg->path.size(); ++k) {
        msg->fwd_ports.push_back(ports(msg->path[k], msg->path[k + 1]));
        msg->rev_ports.push_back(ports(msg->path[k + 1], msg->path[k]));
    }

    CallRecord rec;
    rec.id = msg->id;
    rec.source = self;
    rec.destination = req.destination;
    rec.demand = req.demand;
    rec.to_destination = route_to_destination(*msg, 0, options_.selective_copy);
    rec.to_source = {};  // we are the source

    const EdgeId out = graph_.find_edge(msg->path[0], msg->path[1]);
    if (!reserve(out, req.demand)) {
        calls_rejected_ += 1;
        rec.state = CallState::kRejected;
        records_[rec.id] = rec;
        return;
    }
    rec.reserved_edge = out;
    rec.state = CallState::kSettingUp;
    if (req.hold_time >= 0) {
        const std::uint64_t cookie = next_cookie_++;
        hold_timers_[cookie] = rec.id;
        // Hold time counts from now; generous enough in tests to cover
        // the setup round-trip.
        ctx.set_timer(req.hold_time, cookie);
    }
    records_[rec.id] = rec;
    if (options_.selective_copy) {
        // One packet; copy ids fan it out to every on-path NCU at once.
        ctx.send(rec.to_destination, msg);
    } else {
        // Pre-PARIS software path: forward to the next hop only.
        ctx.send(one_hop_forward(*msg, 0), msg);
    }
}

void CallAgentProtocol::release_local(CallRecord& rec, CallState final_state) {
    if (rec.reserved_edge != kNoEdge) {
        auto it = reserved_.find(rec.reserved_edge);
        FASTNET_ENSURES(it != reserved_.end() && it->second >= rec.demand);
        it->second -= rec.demand;
        rec.reserved_edge = kNoEdge;
    }
    rec.state = final_state;
}

void CallAgentProtocol::send_teardown(node::Context& ctx, const CallRecord& rec,
                                      bool due_to_reject) {
    auto msg = std::make_shared<TeardownMsg>();
    msg->id = rec.id;
    msg->due_to_reject = due_to_reject;
    msg->relay = !options_.selective_copy;
    if (options_.selective_copy) {
        // One copy packet releases every hop at once.
        ctx.send(rec.to_destination, msg);
    } else {
        // Hop-by-hop: next NCU releases, then re-sends onward.
        ctx.send({rec.to_destination.front(), hw::AnrLabel::normal(hw::kNcuPort)},
                 msg);
    }
}

void CallAgentProtocol::teardown(node::Context& ctx, CallRecord& rec) {
    send_teardown(ctx, rec, /*due_to_reject=*/false);
    if (rec.state == CallState::kActive) calls_active_ -= 1;
    release_local(rec, CallState::kReleased);
    calls_released_ += 1;
}

void CallAgentProtocol::on_message(node::Context& ctx, const hw::Delivery& d) {
    const NodeId self = ctx.self();
    if (const auto* setup = hw::payload_as<SetupMsg>(d)) {
        const auto it = std::find(setup->path.begin(), setup->path.end(), self);
        FASTNET_EXPECTS_MSG(it != setup->path.end(), "setup strayed off its path");
        const std::size_t i = static_cast<std::size_t>(it - setup->path.begin());

        CallRecord rec;
        rec.id = setup->id;
        rec.source = setup->source;
        rec.destination = setup->destination;
        rec.demand = setup->demand;
        rec.to_source = route_to_source(*setup, i, setup->selective_copy);
        if (self == setup->destination) {
            rec.state = CallState::kReserved;  // activated by our own ACCEPT
            records_[rec.id] = rec;
            auto acc = std::make_shared<AcceptMsg>();
            acc->id = setup->id;
            ctx.send(records_[rec.id].to_source, acc);
            records_[rec.id].state = CallState::kActive;
            return;
        }
        rec.to_destination = route_to_destination(*setup, i, setup->selective_copy);
        const EdgeId out = graph_.find_edge(setup->path[i], setup->path[i + 1]);
        if (!reserve(out, setup->demand)) {
            rec.state = CallState::kRejected;
            records_[rec.id] = rec;
            auto rej = std::make_shared<RejectMsg>();
            rej->id = setup->id;
            rej->bottleneck = self;
            ctx.send(records_[rec.id].to_source, rej);
            return;
        }
        rec.reserved_edge = out;
        rec.state = CallState::kReserved;
        records_[rec.id] = rec;
        if (!setup->selective_copy) {
            // Hop-by-hop mode: this NCU re-sends the setup onward.
            ctx.send(one_hop_forward(*setup, i), std::make_shared<SetupMsg>(*setup));
        }
        return;
    }
    if (const auto* acc = hw::payload_as<AcceptMsg>(d)) {
        const auto it = records_.find(acc->id);
        if (it == records_.end()) return;
        CallRecord& rec = it->second;
        if (rec.source == self) {
            if (rec.state == CallState::kSettingUp) {
                rec.state = CallState::kActive;
                calls_active_ += 1;
            }
            // (A reject may have arrived first; then we stay rejected.)
        } else if (rec.state == CallState::kReserved) {
            rec.state = CallState::kActive;  // intermediate copy of the accept
        }
        return;
    }
    if (const auto* rej = hw::payload_as<RejectMsg>(d)) {
        const auto it = records_.find(rej->id);
        if (it == records_.end() || it->second.source != self) return;
        CallRecord& rec = it->second;
        if (rec.state == CallState::kSettingUp || rec.state == CallState::kActive) {
            if (rec.state == CallState::kActive) calls_active_ -= 1;
            calls_rejected_ += 1;
            // Release the partial reservation everywhere downstream.
            send_teardown(ctx, rec, /*due_to_reject=*/true);
            release_local(rec, CallState::kRejected);
        }
        return;
    }
    if (const auto* td = hw::payload_as<TeardownMsg>(d)) {
        const auto it = records_.find(td->id);
        if (it == records_.end()) return;
        CallRecord& rec = it->second;
        const bool had_more = td->relay && self != rec.destination &&
                              !rec.to_destination.empty() &&
                              (rec.state == CallState::kReserved ||
                               rec.state == CallState::kActive);
        if (had_more) {
            // Hop-by-hop mode: pass the teardown onward before releasing.
            hw::AnrHeader hop{rec.to_destination.front(),
                              hw::AnrLabel::normal(hw::kNcuPort)};
            ctx.send(std::move(hop), std::make_shared<TeardownMsg>(*td));
        }
        release_local(rec, td->due_to_reject ? CallState::kRejected : CallState::kReleased);
        return;
    }
    if (const auto* dis = hw::payload_as<DisconnectMsg>(d)) {
        const auto it = records_.find(dis->id);
        if (it == records_.end()) return;
        CallRecord& rec = it->second;
        if (rec.state == CallState::kReleased || rec.state == CallState::kRejected ||
            rec.state == CallState::kFailed)
            return;
        if (rec.source == self &&
            (rec.state == CallState::kActive || rec.state == CallState::kSettingUp)) {
            if (rec.state == CallState::kActive) calls_active_ -= 1;
            calls_failed_ += 1;
        }
        release_local(rec, CallState::kFailed);
        return;
    }
    FASTNET_ENSURES_MSG(false, "unexpected payload in call agent");
}

void CallAgentProtocol::on_link_state(node::Context& ctx, const node::LocalLink& link,
                                      bool up) {
    if (up) return;
    // Any call whose route crosses the dead link at this node is lost.
    for (auto& [id, rec] : records_) {
        if (rec.state != CallState::kReserved && rec.state != CallState::kActive &&
            rec.state != CallState::kSettingUp)
            continue;
        const bool outgoing_died = rec.reserved_edge == link.edge;
        // Incoming side: the dead link is the hop that reaches us; we can
        // still reach the destination side.
        const bool incoming_died =
            !outgoing_died && !rec.to_source.empty() &&
            rec.source != ctx.self() &&
            rec.to_source.front().port() == link.port;
        if (!outgoing_died && !incoming_died) continue;

        auto dis = std::make_shared<DisconnectMsg>();
        dis->id = id;
        if (outgoing_died && !rec.to_source.empty() && rec.source != ctx.self()) {
            ctx.send(rec.to_source, dis);
        } else if (outgoing_died && rec.source == ctx.self()) {
            // We are the source: nothing upstream to tell.
        } else if (incoming_died && !rec.to_destination.empty()) {
            ctx.send(rec.to_destination, dis);
        }
        if (rec.source == ctx.self() &&
            (rec.state == CallState::kActive || rec.state == CallState::kSettingUp)) {
            if (rec.state == CallState::kActive) calls_active_ -= 1;
            calls_failed_ += 1;
        }
        release_local(rec, CallState::kFailed);
    }
}

node::ProtocolFactory make_call_agents(const graph::Graph& g, std::uint32_t link_capacity,
                                       std::map<NodeId, std::vector<CallRequest>> scripts,
                                       bool selective_copy) {
    return [&g, link_capacity, scripts = std::move(scripts), selective_copy](NodeId u) {
        CallAgentOptions opt;
        opt.link_capacity = link_capacity;
        opt.selective_copy = selective_copy;
        if (const auto it = scripts.find(u); it != scripts.end()) opt.requests = it->second;
        return std::make_unique<CallAgentProtocol>(g, opt);
    };
}

}  // namespace fastnet::paris
