#include "paris/workload.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace fastnet::paris {
namespace {

/// Rounds a positive draw to whole ticks, clamped to [1, ~2^53] so a
/// deep Pareto tail can never overflow the simulator clock.
Tick to_ticks(double x) {
    if (!(x >= 1.0)) return 1;
    constexpr double kCeiling = 9.0e15;
    if (x >= kCeiling) return static_cast<Tick>(kCeiling);
    return static_cast<Tick>(std::llround(x));
}

double draw(Rng& rng, ArrivalProcess p, double mean, double alpha) {
    // uniform01() lies in [0, 1); flip it into (0, 1] so the log/power
    // transforms below stay finite.
    const double u = 1.0 - rng.uniform01();
    switch (p) {
        case ArrivalProcess::kNone: return mean;
        case ArrivalProcess::kPoisson: return -mean * std::log(u);
        case ArrivalProcess::kPareto: {
            // Scale chosen so the requested mean comes out exactly:
            // E[X] = xm * alpha / (alpha - 1).
            const double xm = mean * (alpha - 1.0) / alpha;
            return xm / std::pow(u, 1.0 / alpha);
        }
    }
    return mean;
}

}  // namespace

const char* arrival_process_name(ArrivalProcess p) {
    switch (p) {
        case ArrivalProcess::kNone: return "none";
        case ArrivalProcess::kPoisson: return "poisson";
        case ArrivalProcess::kPareto: return "pareto";
    }
    return "?";
}

Tick draw_gap(Rng& rng, const WorkloadSpec& w) {
    FASTNET_EXPECTS(w.mean_interarrival > 0);
    FASTNET_EXPECTS(w.arrivals != ArrivalProcess::kPareto || w.arrival_alpha > 1.0);
    return to_ticks(draw(rng, w.arrivals, w.mean_interarrival, w.arrival_alpha));
}

Tick draw_hold(Rng& rng, const WorkloadSpec& w) {
    FASTNET_EXPECTS(w.mean_hold > 0);
    FASTNET_EXPECTS(w.holding != ArrivalProcess::kPareto || w.hold_alpha > 1.0);
    return to_ticks(draw(rng, w.holding, w.mean_hold, w.hold_alpha));
}

NodeId draw_destination(Rng& rng, NodeId self, NodeId node_count) {
    FASTNET_EXPECTS(node_count >= 2 && self < node_count);
    const NodeId d = static_cast<NodeId>(rng.below(node_count - 1));
    return d >= self ? d + 1 : d;
}

}  // namespace fastnet::paris
