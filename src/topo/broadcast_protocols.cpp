#include "topo/broadcast_protocols.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "graph/algorithms.hpp"
#include "hw/anr.hpp"

namespace fastnet::topo {

const char* scheme_name(BroadcastScheme s) {
    switch (s) {
        case BroadcastScheme::kBranchingPaths: return "branching-paths";
        case BroadcastScheme::kFlooding: return "flooding";
        case BroadcastScheme::kDfsToken: return "dfs-token";
        case BroadcastScheme::kLayeredBfs: return "layered-bfs";
        case BroadcastScheme::kDirectUnicast: return "direct-unicast";
    }
    return "?";
}

BroadcastProtocol::BroadcastProtocol(const graph::Graph& g, BroadcastScheme scheme)
    : graph_(g), scheme_(scheme) {}

std::uint64_t& BroadcastProtocol::seen_round(NodeId origin) {
    for (auto& [o, round] : seen_rounds_) {
        if (o == origin) return round;
    }
    return seen_rounds_.emplace_back(origin, 0).second;
}

std::size_t BroadcastProtocol::memory_bytes() const {
    return sizeof(*this) + seen_rounds_.capacity() * sizeof(seen_rounds_[0]);
}

void BroadcastProtocol::on_start(node::Context& ctx) {
    const NodeId self = ctx.self();
    receive_time_ = ctx.now();  // the origin trivially "has" the message

    if (scheme_ == BroadcastScheme::kFlooding) {
        seen_round(self) = next_round_;
        flood(ctx, self, next_round_++, hw::kNoPort);
        dispatch_time_ = ctx.now();
        return;
    }

    const graph::RootedTree tree = graph::min_hop_tree(graph_, self);
    const hw::PortMap ports = hw::canonical_ports(graph_);
    auto plan = std::make_shared<BroadcastPlan>([&] {
        switch (scheme_) {
            case BroadcastScheme::kDfsToken: return plan_dfs_token(tree, ports);
            case BroadcastScheme::kLayeredBfs: return plan_layered_bfs(tree, ports);
            case BroadcastScheme::kDirectUnicast: return plan_direct_unicast(tree, ports);
            default: return plan_branching_paths(tree, ports);
        }
    }());

    auto msg = std::make_shared<BroadcastMessage>();
    msg->plan = plan;
    msg->origin = self;
    msg->round = next_round_++;
    dispatch_time_ = ctx.now();
    for (std::size_t idx : plan->messages_at[self])
        ctx.send(plan->messages[idx].header, msg);
}

void BroadcastProtocol::on_message(node::Context& ctx, const hw::Delivery& d) {
    if (const auto* flood_msg = hw::payload_as<FloodMessage>(d)) {
        std::uint64_t& seen = seen_round(flood_msg->origin);
        if (seen >= flood_msg->round) return;  // duplicate
        seen = flood_msg->round;
        if (receive_time_ == kNever) receive_time_ = ctx.now();
        const hw::PortId arrival =
            d.reverse.empty() ? hw::kNoPort : d.reverse.front().port();
        flood(ctx, flood_msg->origin, flood_msg->round, arrival);
        return;
    }
    const auto* msg = hw::payload_as<BroadcastMessage>(d);
    FASTNET_EXPECTS_MSG(msg != nullptr, "unexpected payload type");
    if (receive_time_ == kNever) receive_time_ = ctx.now();
    deliver_planned(ctx, *msg);
}

void BroadcastProtocol::deliver_planned(node::Context& ctx, const BroadcastMessage& msg) {
    // Inject every planned message that starts here — all in this one
    // system call (the model's free multi-link send).
    const auto& mine = msg.plan->messages_at[ctx.self()];
    auto payload = std::make_shared<BroadcastMessage>(msg);
    for (std::size_t idx : mine) ctx.send(msg.plan->messages[idx].header, payload);
}

void BroadcastProtocol::flood(node::Context& ctx, NodeId origin, std::uint64_t round,
                              hw::PortId arrival_port) {
    // Classic flooding relays the *originator's* message: origin/round
    // pass through unchanged so the duplicate filter converges.
    auto msg = std::make_shared<FloodMessage>();
    msg->origin = origin;
    msg->round = round;
    for (const node::LocalLink& l : ctx.links()) {
        if (!l.active || l.port == arrival_port) continue;
        hw::AnrHeader h{hw::AnrLabel::normal(l.port), hw::AnrLabel::normal(hw::kNcuPort)};
        ctx.send(std::move(h), msg);
    }
}

BroadcastOutcome run_broadcast(const graph::Graph& g, BroadcastScheme scheme, NodeId origin,
                               node::ClusterConfig config) {
    if (scheme == BroadcastScheme::kLayeredBfs) {
        // The footnote-1 scheme requires unbounded path length.
        FASTNET_EXPECTS_MSG(config.params.dmax == 0,
                            "layered-bfs needs an unbounded dmax");
    }
    node::Cluster cluster(g, [&g, scheme](NodeId) {
        return std::make_unique<BroadcastProtocol>(g, scheme);
    }, config);
    cluster.start(origin, 0);
    cluster.run();

    BroadcastOutcome out;
    const NodeId n = cluster.node_count();
    out.received.resize(n);
    out.receive_times.resize(n, kNever);
    out.origin_dispatch = cluster.protocol_as<BroadcastProtocol>(origin).dispatch_time();
    for (NodeId u = 0; u < n; ++u) {
        const auto& p = cluster.protocol_as<BroadcastProtocol>(u);
        out.received[u] = p.received();
        out.receive_times[u] = p.receive_time();
        if (u != origin && p.received())
            out.last_receive = std::max(out.last_receive == kNever ? 0 : out.last_receive,
                                        p.receive_time());
    }
    out.all_received = std::all_of(out.received.begin(), out.received.end(),
                                   [](bool b) { return b; });
    if (out.last_receive != kNever && out.origin_dispatch != kNever)
        out.elapsed = out.last_receive - out.origin_dispatch;
    if (config.params.ncu_delay > 0)
        out.time_units = static_cast<double>(out.elapsed) /
                         static_cast<double>(config.params.ncu_delay);
    out.cost = cost::snapshot(cluster.metrics(), cluster.simulator().now());
    return out;
}

}  // namespace fastnet::topo
