#include "topo/broadcast_plan.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace fastnet::topo {
namespace {

/// Euler-tour node sequence of `tree` from the root (each edge twice),
/// with an optional per-node child reordering.
std::vector<NodeId> euler_sequence(const graph::RootedTree& tree,
                                   const ChildReorder& reorder = {}) {
    std::vector<NodeId> seq;
    // Iterative DFS producing the full tour.
    struct Frame {
        NodeId node;
        std::vector<NodeId> children;
        std::size_t next_child;
    };
    auto ordered_children = [&](NodeId u) {
        std::vector<NodeId> cs(tree.children(u).begin(), tree.children(u).end());
        if (reorder) reorder(u, cs);
        return cs;
    };
    std::vector<Frame> stack;
    stack.push_back({tree.root(), ordered_children(tree.root()), 0});
    seq.push_back(tree.root());
    while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.next_child < f.children.size()) {
            const NodeId c = f.children[f.next_child++];
            seq.push_back(c);
            stack.push_back({c, ordered_children(c), 0});
        } else {
            stack.pop_back();
            if (!stack.empty()) seq.push_back(stack.back().node);
        }
    }
    return seq;
}

void trim_after_last_first_visit(std::vector<NodeId>& seq, NodeId capacity) {
    std::vector<bool> seen(capacity, false);
    std::size_t last_first = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        if (!seen[seq[i]]) {
            seen[seq[i]] = true;
            last_first = i;
        }
    }
    seq.resize(last_first + 1);
}

/// Builds a single-message plan from a visit sequence: copies are dropped
/// at the first visit of every non-root node; the route terminates in the
/// final node's NCU.
BroadcastPlan plan_from_sequence(const graph::RootedTree& tree, std::vector<NodeId> seq,
                                 const hw::PortMap& ports) {
    BroadcastPlan plan;
    plan.messages_at.assign(tree.node_capacity(), {});
    plan.covered_nodes = tree.size();
    plan.time_units = tree.size() > 1 ? 1 : 0;
    plan.root_label = 0;
    if (tree.size() <= 1) return plan;

    trim_after_last_first_visit(seq, tree.node_capacity());
    PlannedMessage msg;
    msg.start = tree.root();
    std::vector<bool> seen(tree.node_capacity(), false);
    seen[tree.root()] = true;
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
        const hw::PortId p = ports(seq[i], seq[i + 1]);
        FASTNET_EXPECTS_MSG(p != hw::kNoPort, "port map lacks a tour hop");
        // A copy id here drops the packet at seq[i]'s own NCU — set it on
        // the label consumed at each node's first visit.
        const bool first_visit = !seen[seq[i]];
        seen[seq[i]] = true;
        if (first_visit) msg.covers.push_back(seq[i]);
        msg.header.push_back(first_visit ? hw::AnrLabel::copy(p) : hw::AnrLabel::normal(p));
    }
    // The trimmed sequence ends at a first visit; deliver there via the
    // NCU id.
    FASTNET_ENSURES(!seen[seq.back()]);
    msg.covers.push_back(seq.back());
    msg.header.push_back(hw::AnrLabel::normal(hw::kNcuPort));
    plan.messages_at[tree.root()].push_back(0);
    plan.messages.push_back(std::move(msg));
    return plan;
}

}  // namespace

BroadcastPlan plan_branching_paths(const graph::RootedTree& tree, const hw::PortMap& ports) {
    const std::vector<unsigned> labels = label_tree(tree);
    const PathDecomposition d = decompose_paths(tree, labels);
    BroadcastPlan plan;
    plan.messages_at.assign(tree.node_capacity(), {});
    plan.time_units = d.time_units;
    plan.root_label = tree.size() >= 1 ? labels[tree.root()] : 0;
    plan.covered_nodes = tree.size();
    plan.messages.reserve(d.paths.size());
    for (const BroadcastPath& p : d.paths) {
        PlannedMessage msg;
        msg.start = p.nodes.front();
        msg.header = hw::route_for_path(p.nodes, ports, hw::CopyMode::kIntermediates);
        msg.covers.assign(p.nodes.begin() + 1, p.nodes.end());
        plan.messages_at[msg.start].push_back(plan.messages.size());
        plan.messages.push_back(std::move(msg));
    }
    return plan;
}

BroadcastPlan plan_dfs_token(const graph::RootedTree& tree, const hw::PortMap& ports,
                             const ChildReorder& reorder) {
    return plan_from_sequence(tree, euler_sequence(tree, reorder), ports);
}

BroadcastPlan plan_layered_bfs(const graph::RootedTree& tree, const hw::PortMap& ports) {
    // Concatenate Euler tours of the depth-<=k truncations, k = 1..height.
    // (Jaffe's algorithm from the paper's footnote 1.)
    std::vector<NodeId> seq{tree.root()};
    const unsigned h = tree.height();
    for (unsigned k = 1; k <= h; ++k) {
        // Euler tour of the subtree of nodes at depth <= k.
        struct Frame {
            NodeId node;
            std::size_t next_child;
            unsigned depth;
        };
        std::vector<Frame> stack{{tree.root(), 0, 0}};
        for (; !stack.empty();) {
            Frame& f = stack.back();
            const auto cs = tree.children(f.node);
            if (f.depth < k && f.next_child < cs.size()) {
                const NodeId c = cs[f.next_child++];
                seq.push_back(c);
                stack.push_back({c, 0, f.depth + 1});
            } else {
                stack.pop_back();
                if (!stack.empty()) seq.push_back(stack.back().node);
            }
        }
    }
    return plan_from_sequence(tree, std::move(seq), ports);
}

BroadcastPlan plan_direct_unicast(const graph::RootedTree& tree, const hw::PortMap& ports) {
    BroadcastPlan plan;
    plan.messages_at.assign(tree.node_capacity(), {});
    plan.covered_nodes = tree.size();
    plan.time_units = tree.size() > 1 ? 1 : 0;
    plan.root_label = 0;
    for (NodeId u : tree.preorder()) {
        if (u == tree.root()) continue;
        PlannedMessage msg;
        msg.start = tree.root();
        msg.header = hw::route_for_path(tree.path_from_root(u), ports, hw::CopyMode::kNone);
        msg.covers = {u};
        plan.messages_at[tree.root()].push_back(plan.messages.size());
        plan.messages.push_back(std::move(msg));
    }
    return plan;
}

}  // namespace fastnet::topo
