#include "topo/lower_bound.hpp"

#include "common/expect.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "topo/paths.hpp"

namespace fastnet::topo {
namespace {

/// P_t from the proof: predecessors of V_t accumulated over strata.
/// P_0 = 1 (the source), P_t = 5 * 2^t + P_(t-1).
std::uint64_t predecessors(unsigned t) {
    std::uint64_t p = 1;
    for (unsigned i = 1; i <= t; ++i) p += 5ull * (1ull << i);
    return p;
}

}  // namespace

unsigned one_way_lower_bound(unsigned depth) {
    // The claim applies for integer t with 1 <= t < (depth - 5) / 5,
    // i.e. t <= floor((depth - 6) / 5); uninformed nodes exist at every
    // such t, so the broadcast time exceeds the largest applicable t.
    if (depth < 11) return 0;
    return (depth - 6) / 5;
}

bool lower_bound_certificate_holds(unsigned depth) {
    if (depth < 11) return true;  // vacuous
    for (unsigned t = 1; 5 * (t + 1) <= depth; ++t) {
        const std::uint64_t stratum = 1ull << (t + 5);        // |S| = 2^(t+5)
        const std::uint64_t reached_bound = 2 * predecessors(t);
        const std::uint64_t survivors_needed = 1ull << (t + 1);
        if (stratum < reached_bound + survivors_needed) return false;
    }
    return true;
}

unsigned branching_paths_rounds(unsigned depth) {
    FASTNET_EXPECTS(depth <= 24);
    const graph::Graph g = graph::make_complete_binary_tree(depth);
    const graph::RootedTree t = graph::min_hop_tree(g, 0);
    const auto labels = label_tree(t);
    const PathDecomposition d = decompose_paths(t, labels);
    return d.time_units;
}

}  // namespace fastnet::topo
