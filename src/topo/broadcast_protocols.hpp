// Runnable broadcast protocols: the branching-paths broadcast of Section
// 3.1 and its competitors, as NCU software on the simulated fabric.
//
// Schemes:
//   kBranchingPaths — the paper's algorithm: O(n) system calls,
//                     <= 1 + floor(log2 n) time units (Theorem 2).
//   kFlooding       — ARPANET baseline: O(m) system calls, O(n) time.
//   kDfsToken       — single Euler-tour message; n system calls, 1 unit,
//                     but loses all coverage past the first dead link
//                     (the paper's non-convergence example).
//   kLayeredBfs     — footnote-1 single message with O(n^2) header,
//                     1 unit; needs unbounded dmax.
//   kDirectUnicast  — root sends n-1 direct messages; 1 unit, n-1 calls,
//                     but the root pays one send per node.
#pragma once

#include <memory>
#include <vector>

#include "cost/metrics.hpp"
#include "graph/algorithms.hpp"
#include "node/cluster.hpp"
#include "topo/broadcast_plan.hpp"

namespace fastnet::topo {

enum class BroadcastScheme {
    kBranchingPaths,
    kFlooding,
    kDfsToken,
    kLayeredBfs,
    kDirectUnicast,
};

const char* scheme_name(BroadcastScheme s);

/// The broadcast payload for the planned schemes: the plan rides along so
/// every path-start node knows which messages to inject ("the message
/// contains a description of the tree").
struct BroadcastMessage final : hw::TypedPayload<BroadcastMessage> {
    std::shared_ptr<const BroadcastPlan> plan;
    NodeId origin = kNoNode;
    std::uint64_t round = 0;
};

/// Flooding payload.
struct FloodMessage final : hw::TypedPayload<FloodMessage> {
    NodeId origin = kNoNode;
    std::uint64_t round = 0;
};

/// Protocol implementing all schemes (selected at construction).
/// The origin builds its spanning tree from the supplied graph view
/// (min-hop, as the paper's T_i(t)) at start time.
class BroadcastProtocol final : public node::Protocol {
public:
    const char* name() const override { return "broadcast"; }
    BroadcastProtocol(const graph::Graph& g, BroadcastScheme scheme);

    void on_start(node::Context& ctx) override;
    void on_message(node::Context& ctx, const hw::Delivery& d) override;

    std::size_t memory_bytes() const override;

    // ---- observation ----------------------------------------------------
    bool received() const { return receive_time_ != kNever; }
    Tick receive_time() const { return receive_time_; }
    Tick dispatch_time() const { return dispatch_time_; }

private:
    void deliver_planned(node::Context& ctx, const BroadcastMessage& msg);
    void flood(node::Context& ctx, NodeId origin, std::uint64_t round,
               hw::PortId arrival_port);

    const graph::Graph& graph_;
    BroadcastScheme scheme_;
    Tick receive_time_ = kNever;   ///< Handler-completion time of first reception.
    Tick dispatch_time_ = kNever;  ///< Origin only: when its messages left.
    std::uint64_t next_round_ = 1;
    std::uint64_t& seen_round(NodeId origin);
    /// Flooding duplicate filter: newest round seen per origin. One node
    /// only ever hears from the few origins that actually flood, so this
    /// is a find-or-append list, NOT an n-entry table — the eager n-entry
    /// version made a cluster O(n^2) memory, which is exactly what the
    /// bytes/node bench guards against (docs/PERF.md "Memory at scale").
    std::vector<std::pair<NodeId, std::uint64_t>> seen_rounds_;
};

/// Outcome of one standalone broadcast run.
struct BroadcastOutcome {
    std::vector<bool> received;
    std::vector<Tick> receive_times;   ///< Handler completion per node; kNever if missed.
    Tick origin_dispatch = kNever;
    Tick last_receive = kNever;
    /// Elapsed ticks from origin dispatch to last reception.
    Tick elapsed = 0;
    /// Elapsed expressed in P-units (the paper's broadcast time measure);
    /// only meaningful when P > 0 and C == 0.
    double time_units = 0;
    cost::CostReport cost;
    bool all_received = false;
};

/// Runs one broadcast of `scheme` from `origin` over `g` and reports.
BroadcastOutcome run_broadcast(const graph::Graph& g, BroadcastScheme scheme, NodeId origin,
                               node::ClusterConfig config = {});

}  // namespace fastnet::topo
