// Path decomposition for the branching-paths broadcast (Section 3.1).
//
// Every maximal chain of equal-label nodes forms the body of one path;
// the chain head's parent is prepended as the path's *start* node (the
// root's own chain starts at the root). The start of a path therefore
// lies on another (higher-label) path — or is the root — which is what
// yields the 1 + x - y delivery bound of Theorem 2:
//
//   * every non-root node is interior/end of exactly one path (it is
//     covered exactly once -> n-1 message receptions per broadcast);
//   * a path's label is strictly smaller than the label of the path its
//     start node lies on, so chains of paths have length <= x+1 where x
//     is the root label <= floor(log2 n).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/rooted_tree.hpp"
#include "topo/labeling.hpp"

namespace fastnet::topo {

/// One broadcast path: nodes[0] is the start (already informed when the
/// path is sent), nodes[1..] are covered by the path's single message.
struct BroadcastPath {
    std::vector<NodeId> nodes;
    unsigned label = 0;  ///< Common label of the edges on the path.
    unsigned wave = 0;   ///< Time unit (1-based) at which the message for
                         ///< this path is transmitted.
};

struct PathDecomposition {
    std::vector<BroadcastPath> paths;
    /// paths_at[u] — indices (into `paths`) of paths starting at u.
    std::vector<std::vector<std::size_t>> paths_at;
    /// Max wave over paths = broadcast time in units (Theorem 2: <= 1+x).
    unsigned time_units = 0;
};

/// Decomposes a labelled tree. `labels` must come from label_tree(t).
PathDecomposition decompose_paths(const graph::RootedTree& t,
                                  const std::vector<unsigned>& labels);

/// Validates the structural invariants listed above (used by tests).
bool valid_decomposition(const graph::RootedTree& t, const std::vector<unsigned>& labels,
                         const PathDecomposition& d);

}  // namespace fastnet::topo
