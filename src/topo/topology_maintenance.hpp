// The topology maintenance protocol of Section 3.
//
// Every node keeps a database of local topologies (its own plus whatever
// it has learned from broadcasts), each stamped with the originator's
// sequence number. Periodically, node i:
//   1. computes T_i(t), a min-hop spanning tree of its *current view*
//      G_i(t), rooted at i — expanding only through nodes whose local
//      topology (and hence ports) it knows;
//   2. broadcasts its local topology (or, in full-knowledge mode, its
//      entire database — the paper's "log d" improvement) over T_i(t)
//      using the configured broadcast scheme;
//   3. merges any received topology messages by sequence number.
//
// With the branching-paths scheme this yields eventual consistency
// (Theorem 1): after the last topological change, every node's view of
// its connected component becomes exact within O(d) rounds. With the
// DFS-token scheme, the paper's Section 3 example shows rounds can
// deadlock forever; Options::dfs_preference reproduces the adversarial
// route choices of that example.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "graph/rooted_tree.hpp"
#include "hw/network.hpp"
#include "node/cluster.hpp"
#include "topo/broadcast_protocols.hpp"

namespace fastnet::topo {

/// One adjacent-link record as it appears in a local topology.
struct NeighborRecord {
    NodeId neighbor = kNoNode;
    hw::PortId port = hw::kNoPort;      ///< Port at the record's *owner*.
    hw::PortId far_port = hw::kNoPort;  ///< Port at the neighbor (learned
                                        ///< during data-link init).
    bool active = true;
};

/// A node's local topology, as stored/learned.
struct LocalTopology {
    bool known = false;
    std::uint64_t seq = 0;
    std::vector<NeighborRecord> links;
};

struct TopologyOptions {
    BroadcastScheme scheme = BroadcastScheme::kBranchingPaths;
    /// Broadcast period; each node rebroadcasts every `period` ticks.
    Tick period = 64;
    /// Total number of rounds each node performs (the harness bounds runs).
    unsigned rounds = 8;
    /// Broadcast the whole database instead of only the local topology
    /// (the "log d instead of d" comment after Theorem 1).
    bool full_knowledge = false;
    /// Optional per-origin DFS branch preference (adversarial example):
    /// dfs_preference[origin] lists neighbors whose branches the Euler
    /// tour must visit first.
    std::vector<std::vector<NodeId>> dfs_preference;
};

/// The broadcast payload of one round.
struct TopologyMessage final : hw::TypedPayload<TopologyMessage> {
    NodeId origin = kNoNode;
    std::uint64_t seq = 0;
    /// (owner, topology) pairs carried by this broadcast.
    std::vector<std::pair<NodeId, LocalTopology>> topologies;
    std::shared_ptr<const BroadcastPlan> plan;
};

class TopologyMaintenance final : public node::Protocol {
public:
    const char* name() const override { return "topology_maintenance"; }
    TopologyMaintenance(NodeId node_count, TopologyOptions options);

    void on_start(node::Context& ctx) override;
    void on_restart(node::Context& ctx) override;
    void on_timer(node::Context& ctx, std::uint64_t cookie) override;
    void on_link_state(node::Context& ctx, const node::LocalLink& link, bool up) override;
    void on_message(node::Context& ctx, const hw::Delivery& d) override;
    std::size_t memory_bytes() const override;

    // ---- observation -----------------------------------------------------
    const LocalTopology& view_of(NodeId u) const { return db_[u]; }
    std::uint64_t rounds_done() const { return my_seq_; }

    /// The node's current usable view as an edge list (u < v) considered
    /// active. An edge is usable when at least one endpoint's topology is
    /// known and every known endpoint reports it active.
    std::vector<std::pair<NodeId, NodeId>> active_view() const;

    /// Computes a min-hop ANR route from `self` to `dst` over the current
    /// view (the "route computation" duty the paper assigns the NCU).
    /// Empty optional when dst is not reachable in the view.
    std::optional<hw::AnrHeader> route_to(NodeId self, NodeId dst) const;

private:
    void refresh_local(node::Context& ctx);
    void do_round(node::Context& ctx);
    graph::RootedTree known_tree(NodeId self) const;
    hw::PortMap db_ports() const;

    NodeId n_;
    TopologyOptions options_;
    std::vector<LocalTopology> db_;
    std::uint64_t my_seq_ = 0;
    unsigned rounds_left_ = 0;
};

/// Factory for Cluster construction.
node::ProtocolFactory make_topology_maintenance(NodeId node_count, TopologyOptions options);

/// True if `self`'s view is exact over its *actual* connected component
/// (component computed over currently-active links of `net`): every
/// member's topology is known and every record's activity flag matches
/// the network truth.
bool view_converged(const TopologyMaintenance& proto, const hw::Network& net, NodeId self);

/// True if every node's view has converged.
bool all_views_converged(node::Cluster& cluster);

}  // namespace fastnet::topo
