// A reliable datagram service composed on top of topology maintenance —
// the paper's Introduction in miniature: "it will be mainly the
// distributed algorithms used to control and manage the network (the
// route computation, configuration management, etc.) that will use the
// processing resources."
//
// RouterProtocol embeds a TopologyMaintenance instance (delegating its
// handler traffic to it) and offers an application-facing datagram
// primitive: send(dst, tag). Datagrams are source-routed from the
// current view, acknowledged end-to-end over the hardware reverse
// route, and retried on a timer — so they survive both stale views
// (route not yet known: queued) and mid-flight link failures (lost
// packet: retried over the re-converged view).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "topo/topology_maintenance.hpp"

namespace fastnet::topo {

/// Application payload carried by the router.
struct Datagram final : hw::TypedPayload<Datagram> {
    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    std::uint64_t tag = 0;  ///< Application-chosen identifier.
    std::uint64_t seq = 0;  ///< Source-local, for ack matching.
};

struct DatagramAck final : hw::TypedPayload<DatagramAck> {
    std::uint64_t seq = 0;
};

struct RouterOptions {
    TopologyOptions topology;  ///< Settings for the embedded maintenance.
    Tick retry_period = 256;   ///< Unacked datagrams are re-sent this often.
    unsigned max_retries = 16; ///< Give up after this many attempts.
};

/// A send request scripted at construction (issued at time `at`).
struct SendRequest {
    Tick at = 0;
    NodeId dst = kNoNode;
    std::uint64_t tag = 0;
};

class RouterProtocol final : public node::Protocol {
public:
    const char* name() const override { return "router"; }
    RouterProtocol(NodeId node_count, RouterOptions options,
                   std::vector<SendRequest> sends = {});

    void on_start(node::Context& ctx) override;
    void on_restart(node::Context& ctx) override;
    void on_timer(node::Context& ctx, std::uint64_t cookie) override;
    void on_message(node::Context& ctx, const hw::Delivery& d) override;
    void on_link_state(node::Context& ctx, const node::LocalLink& link, bool up) override;

    // ---- observation -----------------------------------------------------
    const TopologyMaintenance& topology() const { return tm_; }
    /// Tags received by this node (in arrival order, duplicates filtered).
    const std::vector<std::pair<NodeId, std::uint64_t>>& received() const {
        return received_;
    }
    unsigned delivered_and_acked() const { return acked_; }
    unsigned still_pending() const { return static_cast<unsigned>(pending_.size()); }
    unsigned given_up() const { return given_up_; }

private:
    struct Pending {
        Datagram dgram;
        unsigned attempts = 0;
    };

    void try_send(node::Context& ctx, Pending& p);

    TopologyMaintenance tm_;
    RouterOptions options_;
    std::vector<SendRequest> sends_;
    std::map<std::uint64_t, Pending> pending_;  ///< seq -> in-flight datagram
    std::vector<std::pair<NodeId, std::uint64_t>> received_;  ///< (src, tag)
    std::map<NodeId, std::set<std::uint64_t>> seen_from_;  ///< duplicate filter
    std::uint64_t next_seq_ = 1;
    unsigned acked_ = 0;
    unsigned given_up_ = 0;
    bool retry_timer_armed_ = false;

    static constexpr std::uint64_t kRetryCookie = ~std::uint64_t{0} - 1;
    static constexpr std::uint64_t kSendCookieBase = 1u << 20;
};

/// Factory; `sends[u]` are node u's scripted requests.
node::ProtocolFactory make_routers(NodeId node_count, RouterOptions options,
                                   std::map<NodeId, std::vector<SendRequest>> sends = {});

}  // namespace fastnet::topo
