#include "topo/paths.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace fastnet::topo {

PathDecomposition decompose_paths(const graph::RootedTree& t,
                                  const std::vector<unsigned>& labels) {
    FASTNET_EXPECTS(labels.size() == t.node_capacity());
    FASTNET_EXPECTS_MSG(satisfies_lemma1(t, labels), "labels violate Lemma 1");
    PathDecomposition d;
    d.paths_at.assign(t.node_capacity(), {});

    // A node heads a chain iff its label differs from its parent's (or it
    // is the root). Preorder guarantees we see a chain's start path (the
    // one its start node lies on) before the paths branching off it.
    for (NodeId u : t.preorder()) {
        const bool is_head = (u == t.root()) || labels[u] != labels[t.parent(u)];
        if (!is_head) continue;
        BroadcastPath p;
        p.label = labels[u];
        if (u != t.root()) p.nodes.push_back(t.parent(u));
        // Walk the equal-label chain downwards; Lemma 1 makes the next
        // node unique.
        NodeId v = u;
        for (;;) {
            p.nodes.push_back(v);
            NodeId next = kNoNode;
            for (NodeId c : t.children(v)) {
                if (labels[c] == labels[v]) {
                    FASTNET_ENSURES_MSG(next == kNoNode, "Lemma 1 violated");
                    next = c;
                }
            }
            if (next == kNoNode) break;
            v = next;
        }
        // The root's own chain can degenerate to the root alone (when the
        // root's label exceeds every child's); it covers no edge and is
        // not a path.
        if (p.nodes.size() < 2) continue;
        const NodeId start = p.nodes.front();
        d.paths_at[start].push_back(d.paths.size());
        d.paths.push_back(std::move(p));
    }

    // Single-node tree: no paths, covered in zero units.
    if (d.paths.empty()) {
        d.time_units = 0;
        return d;
    }

    // Wave computation: a path starting at the root goes out in unit 1;
    // any other path goes out one unit after the path covering its start
    // node. Process paths in discovery order: a path's covering path has
    // a smaller index because preorder sees the start node's chain first.
    std::vector<unsigned> covered_wave(t.node_capacity(), 0);  // unit at which a
                                                               // node is informed
    covered_wave[t.root()] = 0;
    for (BroadcastPath& p : d.paths) {
        p.wave = covered_wave[p.nodes.front()] + 1;
        for (std::size_t i = 1; i < p.nodes.size(); ++i) covered_wave[p.nodes[i]] = p.wave;
        d.time_units = std::max(d.time_units, p.wave);
    }
    return d;
}

bool valid_decomposition(const graph::RootedTree& t, const std::vector<unsigned>& labels,
                         const PathDecomposition& d) {
    // Every non-root present node covered exactly once.
    std::vector<unsigned> covered(t.node_capacity(), 0);
    for (const BroadcastPath& p : d.paths) {
        if (p.nodes.size() < 2) return false;
        // Path edges are tree edges with the path's label; interior nodes
        // carry the path's label.
        for (std::size_t i = 1; i < p.nodes.size(); ++i) {
            const NodeId v = p.nodes[i];
            if (!t.contains(v) || t.parent(v) != p.nodes[i - 1]) return false;
            if (labels[v] != p.label) return false;
            covered[v] += 1;
        }
        // A non-root start lies strictly above the path's label.
        const NodeId s = p.nodes.front();
        if (s != t.root() && labels[s] <= p.label) return false;
    }
    for (NodeId u : t.preorder()) {
        const unsigned want = (u == t.root()) ? 0 : 1;
        if (covered[u] != want) return false;
    }
    return true;
}

}  // namespace fastnet::topo
