// The leaf-to-root labelling of Section 3.1.
//
// Rule: every leaf gets label 0. For an internal node j whose children
// are all labelled, let l be the largest child label; j gets l+1 if two
// or more children carry l, otherwise l. (Identical to the "rank" used
// in other tree-decomposition contexts, e.g. Harel-Tarjan.)
//
// Key properties, tested as such:
//  * Lemma 1 — a node of label l has at most one child of label l;
//  * a node with label l has at least 2^l nodes in its subtree, so the
//    root's label is at most floor(log2 n) (the heart of Theorem 2).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/rooted_tree.hpp"

namespace fastnet::topo {

inline constexpr unsigned kNoLabel = ~0u;

/// Computes the Section 3.1 label for every present node of `t`.
/// Absent nodes get kNoLabel.
std::vector<unsigned> label_tree(const graph::RootedTree& t);

/// Highest label in the tree (the root's label, by construction).
unsigned max_label(const graph::RootedTree& t, const std::vector<unsigned>& labels);

/// Verifies Lemma 1 on a labelled tree (used by property tests and as a
/// debug check in the broadcast planner).
bool satisfies_lemma1(const graph::RootedTree& t, const std::vector<unsigned>& labels);

}  // namespace fastnet::topo
