// Offline broadcast planning: turn a rooted tree + port knowledge into
// the concrete ANR messages of the branching-paths broadcast, plus the
// competing broadcast schemes' routes (DFS token, layered BFS).
//
// The planner runs inside the origin's NCU using whatever topology view
// it has (the true graph in the standalone benches, the learned G_i(t)
// in the topology-maintenance protocol). The plan ships inside the
// broadcast message — "the message contains a description of the tree,
// enabling every starting node j of a new path to know that it is such
// a node" — here in the already-compiled form of per-start headers.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "graph/rooted_tree.hpp"
#include "hw/anr.hpp"
#include "topo/paths.hpp"

namespace fastnet::topo {

/// One planned path message.
struct PlannedMessage {
    NodeId start = kNoNode;   ///< Node that must inject this message.
    hw::AnrHeader header;     ///< Copy-at-intermediates route for the path.
    std::vector<NodeId> covers;  ///< Nodes that receive it (path[1..]).
};

struct BroadcastPlan {
    std::vector<PlannedMessage> messages;
    /// messages_at[u] — indices of messages injected by u.
    std::vector<std::vector<std::size_t>> messages_at;
    unsigned time_units = 0;      ///< Theorem 2 bound realized by this plan.
    unsigned root_label = 0;      ///< x in the 1 + x - y accounting.
    std::size_t covered_nodes = 0;  ///< Tree size (receptions = size - 1).
};

// ---- Theorem 2 predicted bounds (n >= 1 nodes, m edges) ------------------
// The auditor (obs/audit.hpp) derives these for a concrete run and
// compares them against observed cost::Metrics totals.

/// Branching-paths broadcast time: <= 1 + floor(log2 n) time units.
constexpr unsigned theorem2_time_bound(std::uint64_t n) {
    return 1 + floor_log2(n >= 1 ? n : 1);
}

/// Branching-paths broadcast system calls: <= n message deliveries.
constexpr std::uint64_t theorem2_call_bound(std::uint64_t n) { return n; }

/// Flooding system calls: O(m) — at most two deliveries per edge (one
/// from each endpoint's send across it).
constexpr std::uint64_t flooding_call_bound(std::uint64_t m) { return 2 * m; }

/// Branching-paths plan (Section 3.1). `ports` supplies the sender-side
/// port for every tree edge.
BroadcastPlan plan_branching_paths(const graph::RootedTree& tree, const hw::PortMap& ports);

/// Reorders the children of a tree node before the Euler tour descends
/// into them (in place). Used to reproduce the paper's adversarial
/// route choices in the Section 3 non-convergence example.
using ChildReorder = std::function<void(NodeId parent, std::vector<NodeId>& children)>;

/// The failure-fragile DFS token scheme used as the paper's negative
/// example: one message whose route is an Euler tour of the tree with a
/// copy at the first visit of each non-root node. Time: 1 unit; loses
/// everything after the first dead link.
BroadcastPlan plan_dfs_token(const graph::RootedTree& tree, const hw::PortMap& ports,
                             const ChildReorder& reorder = {});

/// Footnote-1 scheme: a single message traversing the BFS tree layer by
/// layer (subtree covering depth <= 1 first, then depth <= 2, ... with a
/// return to the origin between layers), copies on first visits only.
/// Header length is O(n^2); requires unbounded dmax. Time: 1 unit.
BroadcastPlan plan_layered_bfs(const graph::RootedTree& tree, const hw::PortMap& ports);

/// Baseline: one direct message from the root to each node (time 1 unit,
/// n-1 messages, header lengths up to the tree depth).
BroadcastPlan plan_direct_unicast(const graph::RootedTree& tree, const hw::PortMap& ports);

}  // namespace fastnet::topo
