#include "topo/topology_maintenance.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "graph/algorithms.hpp"

namespace fastnet::topo {
namespace {
constexpr std::uint64_t kRoundTimer = 1;
}  // namespace

TopologyMaintenance::TopologyMaintenance(NodeId node_count, TopologyOptions options)
    : n_(node_count), options_(std::move(options)), db_(node_count),
      rounds_left_(options_.rounds) {}

void TopologyMaintenance::refresh_local(node::Context& ctx) {
    LocalTopology& mine = db_[ctx.self()];
    mine.known = true;
    mine.links.clear();
    for (const node::LocalLink& l : ctx.links())
        mine.links.push_back(NeighborRecord{l.neighbor, l.port, l.remote_port, l.active});
}

std::size_t TopologyMaintenance::memory_bytes() const {
    std::size_t bytes = sizeof(*this) + db_.capacity() * sizeof(LocalTopology);
    for (const LocalTopology& t : db_) bytes += t.links.capacity() * sizeof(NeighborRecord);
    return bytes;
}

void TopologyMaintenance::on_start(node::Context& ctx) {
    refresh_local(ctx);
    if (rounds_left_ == 0) return;
    do_round(ctx);
    if (rounds_left_ > 0) ctx.set_timer(options_.period, kRoundTimer);
}

void TopologyMaintenance::on_restart(node::Context& ctx) {
    // Crash recovery (Section 3, "Changing topology"): the database died
    // with the crash, but the incarnation counter — the one word of
    // stable storage — lets the fresh instance seed its sequence numbers
    // above everything the previous life ever broadcast, so peers' cached
    // entries for us are dominated instead of shadowing us for up to
    // 2^32 rounds.
    my_seq_ = ctx.incarnation() << 32;
    on_start(ctx);
}

void TopologyMaintenance::on_timer(node::Context& ctx, std::uint64_t cookie) {
    if (cookie != kRoundTimer || rounds_left_ == 0) return;
    do_round(ctx);
    if (rounds_left_ > 0) ctx.set_timer(options_.period, kRoundTimer);
}

void TopologyMaintenance::on_link_state(node::Context& ctx, const node::LocalLink&, bool) {
    // The runtime already updated ctx.links(); mirror it into the DB so
    // the next round broadcasts fresh data. (No seq bump outside rounds:
    // the paper increments per broadcast.)
    refresh_local(ctx);
}

graph::RootedTree TopologyMaintenance::known_tree(NodeId self) const {
    // BFS over the usable view, expanding only nodes with known topology
    // (their ports are needed to route onward). Unknown-topology nodes
    // can be *reached* (as leaves) but not expanded.
    std::vector<NodeId> parent(n_, kNoNode);
    std::vector<bool> seen(n_, false);
    std::vector<NodeId> queue{self};
    seen[self] = true;
    for (std::size_t h = 0; h < queue.size(); ++h) {
        const NodeId u = queue[h];
        if (!db_[u].known) continue;  // leaf in the view
        for (const NeighborRecord& r : db_[u].links) {
            if (!r.active || r.neighbor >= n_ || seen[r.neighbor]) continue;
            // If the far side is known it must also report the link active.
            if (db_[r.neighbor].known) {
                const auto& far = db_[r.neighbor].links;
                const auto it = std::find_if(far.begin(), far.end(),
                                             [u](const NeighborRecord& fr) {
                                                 return fr.neighbor == u;
                                             });
                if (it == far.end() || !it->active) continue;
            }
            seen[r.neighbor] = true;
            parent[r.neighbor] = u;
            queue.push_back(r.neighbor);
        }
    }
    return graph::RootedTree(self, std::move(parent));
}

hw::PortMap TopologyMaintenance::db_ports() const {
    return [this](NodeId u, NodeId v) -> hw::PortId {
        if (u < n_ && db_[u].known) {
            for (const NeighborRecord& r : db_[u].links)
                if (r.neighbor == v) return r.port;
        }
        // u's topology unknown, but v's record of the shared link names
        // u's port on it (exchanged at data-link initialization) — this
        // is what lets an Euler tour backtrack out of a freshly
        // discovered neighbor.
        if (v < n_ && db_[v].known) {
            for (const NeighborRecord& r : db_[v].links)
                if (r.neighbor == u) return r.far_port;
        }
        return hw::kNoPort;
    };
}

void TopologyMaintenance::do_round(node::Context& ctx) {
    FASTNET_EXPECTS(rounds_left_ > 0);
    rounds_left_ -= 1;
    refresh_local(ctx);
    const NodeId self = ctx.self();
    db_[self].seq = ++my_seq_;

    const graph::RootedTree tree = known_tree(self);
    if (tree.size() <= 1) return;  // isolated (all links down): nothing to send

    const hw::PortMap ports = db_ports();
    auto plan = std::make_shared<BroadcastPlan>([&] {
        switch (options_.scheme) {
            case BroadcastScheme::kDfsToken: {
                ChildReorder reorder;
                if (self < options_.dfs_preference.size() &&
                    !options_.dfs_preference[self].empty()) {
                    const std::vector<NodeId>& pref = options_.dfs_preference[self];
                    reorder = [pref](NodeId, std::vector<NodeId>& cs) {
                        std::stable_sort(cs.begin(), cs.end(), [&pref](NodeId a, NodeId b) {
                            const auto pa = std::find(pref.begin(), pref.end(), a);
                            const auto pb = std::find(pref.begin(), pref.end(), b);
                            return pa < pb;
                        });
                    };
                }
                return plan_dfs_token(tree, ports, reorder);
            }
            case BroadcastScheme::kLayeredBfs:
                return plan_layered_bfs(tree, ports);
            case BroadcastScheme::kDirectUnicast:
                return plan_direct_unicast(tree, ports);
            default:
                return plan_branching_paths(tree, ports);
        }
    }());

    auto msg = std::make_shared<TopologyMessage>();
    msg->origin = self;
    msg->seq = my_seq_;
    if (options_.full_knowledge) {
        for (NodeId u = 0; u < n_; ++u)
            if (db_[u].known) msg->topologies.emplace_back(u, db_[u]);
    } else {
        msg->topologies.emplace_back(self, db_[self]);
    }
    msg->plan = plan;
    for (std::size_t idx : plan->messages_at[self]) ctx.send(plan->messages[idx].header, msg);
}

void TopologyMaintenance::on_message(node::Context& ctx, const hw::Delivery& d) {
    const auto* msg = hw::payload_as<TopologyMessage>(d);
    FASTNET_EXPECTS_MSG(msg != nullptr, "unexpected payload in topology maintenance");
    // Merge by sequence number; our own entry stays authoritative.
    const NodeId self = ctx.self();
    for (const auto& [owner, topo] : msg->topologies) {
        if (owner == self) continue;
        if (owner >= n_ || !topo.known) continue;
        if (!db_[owner].known || topo.seq > db_[owner].seq) db_[owner] = topo;
    }
    // One-way relay: forward the paths starting here, unconditionally.
    auto payload = std::make_shared<TopologyMessage>(*msg);
    for (std::size_t idx : msg->plan->messages_at[self])
        ctx.send(msg->plan->messages[idx].header, payload);
}

std::optional<hw::AnrHeader> TopologyMaintenance::route_to(NodeId self, NodeId dst) const {
    FASTNET_EXPECTS(self < n_ && dst < n_);
    if (self == dst) return hw::AnrHeader{hw::AnrLabel::normal(hw::kNcuPort)};
    const graph::RootedTree tree = known_tree(self);
    if (!tree.contains(dst)) return std::nullopt;
    return hw::route_for_path(tree.path_from_root(dst), db_ports());
}

std::vector<std::pair<NodeId, NodeId>> TopologyMaintenance::active_view() const {
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId u = 0; u < n_; ++u) {
        if (!db_[u].known) continue;
        for (const NeighborRecord& r : db_[u].links) {
            if (!r.active || r.neighbor >= n_) continue;
            const NodeId v = r.neighbor;
            if (db_[v].known) {
                const auto& far = db_[v].links;
                const auto it = std::find_if(far.begin(), far.end(), [u](const NeighborRecord& fr) {
                    return fr.neighbor == u;
                });
                if (it == far.end() || !it->active) continue;
                if (u > v) continue;  // counted from the lower endpoint
            } else if (u > v) {
                continue;
            }
            edges.emplace_back(std::min(u, v), std::max(u, v));
        }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
}

node::ProtocolFactory make_topology_maintenance(NodeId node_count, TopologyOptions options) {
    return [node_count, options](NodeId) {
        return std::make_unique<TopologyMaintenance>(node_count, options);
    };
}

bool view_converged(const TopologyMaintenance& proto, const hw::Network& net, NodeId self) {
    const graph::Graph& g = net.graph();
    const auto active = [&net](EdgeId e) { return net.link_active(e); };
    const auto comp = graph::connected_components(g, active);
    for (NodeId u = 0; u < g.node_count(); ++u) {
        if (comp[u] != comp[self]) continue;
        const LocalTopology& t = proto.view_of(u);
        if (!t.known) return false;
        // Every incident edge of u must be recorded with the true state.
        if (t.links.size() != g.degree(u)) return false;
        for (const graph::IncidentEdge& ie : g.incident(u)) {
            const auto it = std::find_if(t.links.begin(), t.links.end(),
                                         [&ie](const NeighborRecord& r) {
                                             return r.neighbor == ie.neighbor;
                                         });
            if (it == t.links.end()) return false;
            if (it->active != net.link_active(ie.edge)) return false;
        }
    }
    return true;
}

bool all_views_converged(node::Cluster& cluster) {
    for (NodeId u = 0; u < cluster.node_count(); ++u) {
        const auto& p = cluster.protocol_as<TopologyMaintenance>(u);
        if (!view_converged(p, cluster.network(), u)) return false;
    }
    return true;
}

}  // namespace fastnet::topo
