#include "topo/labeling.hpp"

#include "common/expect.hpp"

namespace fastnet::topo {

std::vector<unsigned> label_tree(const graph::RootedTree& t) {
    std::vector<unsigned> labels(t.node_capacity(), kNoLabel);
    // Postorder guarantees all children are labelled before their parent.
    for (NodeId u : t.postorder()) {
        unsigned best = 0;     // largest child label
        unsigned count = 0;    // how many children carry it
        for (NodeId c : t.children(u)) {
            const unsigned lc = labels[c];
            FASTNET_ENSURES(lc != kNoLabel);
            if (lc > best) {
                best = lc;
                count = 1;
            } else if (lc == best) {
                ++count;
            }
        }
        if (t.is_leaf(u)) {
            labels[u] = 0;
        } else {
            labels[u] = (count >= 2) ? best + 1 : best;
        }
    }
    return labels;
}

unsigned max_label(const graph::RootedTree& t, const std::vector<unsigned>& labels) {
    FASTNET_EXPECTS(t.contains(t.root()));
    return labels[t.root()];
}

bool satisfies_lemma1(const graph::RootedTree& t, const std::vector<unsigned>& labels) {
    for (NodeId u : t.preorder()) {
        unsigned same = 0;
        for (NodeId c : t.children(u))
            if (labels[c] == labels[u]) ++same;
        if (same > 1) return false;
    }
    return true;
}

}  // namespace fastnet::topo
