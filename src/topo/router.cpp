#include "topo/router.hpp"

#include "common/expect.hpp"

namespace fastnet::topo {

RouterProtocol::RouterProtocol(NodeId node_count, RouterOptions options,
                               std::vector<SendRequest> sends)
    : tm_(node_count, options.topology), options_(options), sends_(std::move(sends)) {}

void RouterProtocol::on_start(node::Context& ctx) {
    tm_.on_start(ctx);
    for (std::size_t i = 0; i < sends_.size(); ++i)
        ctx.set_timer(sends_[i].at, kSendCookieBase + i);
}

void RouterProtocol::on_restart(node::Context& ctx) {
    // Crash recovery. Seqs restart incarnation-prefixed so they can never
    // collide with the dead life's — receivers' duplicate filters keep
    // working without any handshake. Scripted sends are NOT re-armed:
    // requests that had not been issued (or acked) by crash time were
    // soft state and died with the node, which is exactly what an
    // application above the router would observe.
    next_seq_ = (ctx.incarnation() << 32) + 1;
    tm_.on_restart(ctx);
}

void RouterProtocol::try_send(node::Context& ctx, Pending& p) {
    // An attempt is an attempt even when the view cannot route yet —
    // otherwise an unreachable destination would be retried forever.
    p.attempts += 1;
    const auto route = tm_.route_to(ctx.self(), p.dgram.dst);
    if (!route) return;  // view does not reach dst yet; retry later
    ctx.send(*route, std::make_shared<Datagram>(p.dgram));
}

void RouterProtocol::on_timer(node::Context& ctx, std::uint64_t cookie) {
    if (cookie >= kSendCookieBase && cookie != kRetryCookie) {
        const std::size_t i = static_cast<std::size_t>(cookie - kSendCookieBase);
        FASTNET_EXPECTS(i < sends_.size());
        Pending p;
        p.dgram.src = ctx.self();
        p.dgram.dst = sends_[i].dst;
        p.dgram.tag = sends_[i].tag;
        p.dgram.seq = next_seq_++;
        const std::uint64_t seq = p.dgram.seq;
        pending_.emplace(seq, std::move(p));
        try_send(ctx, pending_.at(seq));
        if (!retry_timer_armed_) {
            retry_timer_armed_ = true;
            ctx.set_timer(options_.retry_period, kRetryCookie);
        }
        return;
    }
    if (cookie == kRetryCookie) {
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->second.attempts >= options_.max_retries) {
                given_up_ += 1;
                it = pending_.erase(it);
                continue;
            }
            try_send(ctx, it->second);
            ++it;
        }
        if (!pending_.empty()) {
            ctx.set_timer(options_.retry_period, kRetryCookie);
        } else {
            retry_timer_armed_ = false;
        }
        return;
    }
    // Anything else belongs to the embedded maintenance protocol.
    tm_.on_timer(ctx, cookie);
}

void RouterProtocol::on_message(node::Context& ctx, const hw::Delivery& d) {
    if (const auto* dgram = hw::payload_as<Datagram>(d)) {
        // End-to-end ack over the hardware reverse route, then dedupe.
        ctx.reply(d, [&] {
            auto ack = std::make_shared<DatagramAck>();
            ack->seq = dgram->seq;
            return ack;
        }());
        auto& seen = seen_from_[dgram->src];
        if (!seen.insert(dgram->seq).second) return;  // duplicate retry
        received_.emplace_back(dgram->src, dgram->tag);
        return;
    }
    if (const auto* ack = hw::payload_as<DatagramAck>(d)) {
        if (pending_.erase(ack->seq) > 0) acked_ += 1;
        return;
    }
    tm_.on_message(ctx, d);
}

void RouterProtocol::on_link_state(node::Context& ctx, const node::LocalLink& link,
                                   bool up) {
    tm_.on_link_state(ctx, link, up);
}

node::ProtocolFactory make_routers(NodeId node_count, RouterOptions options,
                                   std::map<NodeId, std::vector<SendRequest>> sends) {
    return [node_count, options, sends = std::move(sends)](NodeId u) {
        std::vector<SendRequest> mine;
        if (const auto it = sends.find(u); it != sends.end()) mine = it->second;
        return std::make_unique<RouterProtocol>(node_count, options, std::move(mine));
    };
}

}  // namespace fastnet::topo
