// Theorem 3: any one-way broadcast needs Omega(log n) time units to
// cover a rooted complete binary tree.
//
// The proof is a counting adversary: at time t there is a set V_t of 2^t
// nodes at depth 5t that no message has reached, because the nodes that
// could launch paths into their stratum (the predecessors P_t) can start
// at most two new paths per time unit, and a one-way path visits at most
// one node of the stratum. We expose the argument as executable
// arithmetic — the same recurrences, checked exactly — plus the matching
// upper bound realized by the branching-paths broadcast.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace fastnet::topo {

/// Largest t for which the adversary argument certifies uninformed nodes
/// at time t on a complete binary tree of the given depth. Any one-way
/// broadcast therefore takes strictly more than this many time units.
/// Returns 0 when the tree is too shallow for the argument to bite.
unsigned one_way_lower_bound(unsigned depth);

/// Mechanically verifies the proof's counting chain for all applicable t
/// at this depth:  |S| - 2 * P_t >= 2^(t+1)  with  V_t = 2^t,
/// |S| = 2^(t+5)  and  P_t = 5 * |V_t| + P_(t-1), P_0 = 1.
bool lower_bound_certificate_holds(unsigned depth);

/// Time units of the branching-paths broadcast on the complete binary
/// tree of the given depth (computed through the real planner). On this
/// tree every decomposition path is a single edge, so the answer is
/// exactly `depth` — the matching O(log n) upper bound.
unsigned branching_paths_rounds(unsigned depth);

}  // namespace fastnet::topo
