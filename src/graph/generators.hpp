// Deterministic topology generators for tests, benches and examples.
//
// Every generator that uses randomness takes an explicit Rng so runs are
// reproducible. All generators return connected graphs (the paper's
// algorithms elect one leader / converge per connected component; the
// benches exercise the single-component case, and the multi-component
// behaviour is covered by tests that compose generators).
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"
#include "graph/rooted_tree.hpp"

namespace fastnet::graph {

/// Path 0 - 1 - ... - (n-1).
Graph make_path(NodeId n);

/// Cycle over n >= 3 nodes.
Graph make_cycle(NodeId n);

/// Star with center 0 and n-1 leaves.
Graph make_star(NodeId n);

/// Complete graph K_n.
Graph make_complete(NodeId n);

/// Complete binary tree of the given depth (depth 0 = single node).
/// Node 0 is the root; node i has children 2i+1 and 2i+2.
Graph make_complete_binary_tree(unsigned depth);

/// Balanced k-ary tree with n nodes (node i's parent is (i-1)/k).
Graph make_kary_tree(NodeId n, unsigned k);

/// "Caterpillar": a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Worst-ish case for naive path decompositions.
Graph make_caterpillar(NodeId spine, NodeId legs);

/// w x h grid (n = w*h).
Graph make_grid(NodeId width, NodeId height);

/// Hypercube of dimension d (n = 2^d).
Graph make_hypercube(unsigned dim);

/// Uniform random labelled tree on n nodes (via a random Pruefer sequence).
Graph make_random_tree(NodeId n, Rng& rng);

/// Connected Erdos-Renyi-style graph: a random spanning tree plus each
/// remaining pair independently with probability p_num/p_den.
Graph make_random_connected(NodeId n, std::uint64_t p_num, std::uint64_t p_den, Rng& rng);

/// The 6-node example graph of Section 3: triangle u,v,w with pendant
/// nodes u1,v1,w1. Node ids: u=0, v=1, w=2, u1=3, v1=4, w1=5. Edge order:
/// (u,v), (v,w), (w,u), (u,u1), (v,v1), (w,w1) — matching the paper.
Graph make_podc_example();

/// A disjoint union of two generated graphs (relabels the second block).
/// Used by tests of per-component convergence / election.
Graph disjoint_union(const Graph& a, const Graph& b);

/// Random spanning tree of g, rooted at `root` (uniform over a random
/// edge-order Kruskal walk; not uniform over all spanning trees, but
/// deterministic given the Rng). Used by property tests that need tree
/// diversity beyond BFS trees.
RootedTree random_spanning_tree(const Graph& g, NodeId root, Rng& rng);

}  // namespace fastnet::graph
