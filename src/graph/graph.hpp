// Undirected multigraph-free graph with dense node and edge ids.
//
// This is the static description of a network: nodes are NCU-equipped
// switches, edges are bidirectional communication links (Section 2 of the
// paper). Dynamic state (active / inactive links) lives in hw::Network;
// the Graph itself is immutable once built, which lets algorithms and the
// simulator share one instance by const reference.
//
// Storage is struct-of-arrays throughout — a deliberate choice for
// million-node topologies (docs/PERF.md, "Memory at scale"). During
// construction, incidence is kept as intrusive per-node chains over
// half-edge ids (edge e contributes half-edges 2e and 2e+1); the first
// incident() call compacts them into a CSR layout (offsets_ + one flat
// incident_ array) by a counting pass over edges_ in id order, which
// reproduces per-node insertion order exactly. No per-node heap objects
// exist at any point. The lazy compaction mutates `mutable` state: the
// first incident()/neighbors() call on a given Graph instance must not
// race with other accesses (in practice every Graph is finalized on the
// thread that built it — e.g. hw::Network's constructor — before any
// parallel phase starts).
#pragma once

#include <span>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace fastnet::graph {

/// One endpoint's view of an incident edge.
struct IncidentEdge {
    EdgeId edge = kNoEdge;    ///< Dense edge id.
    NodeId neighbor = kNoNode;  ///< The node on the other side.
};

/// An undirected edge between two distinct nodes.
struct Edge {
    NodeId a = kNoNode;
    NodeId b = kNoNode;

    /// The endpoint that is not `u`. Precondition: u is an endpoint.
    NodeId other(NodeId u) const {
        FASTNET_EXPECTS(u == a || u == b);
        return u == a ? b : a;
    }
};

/// Immutable undirected simple graph.
class Graph {
public:
    Graph() = default;
    explicit Graph(NodeId node_count)
        : head_(node_count, kNoHalf), degree_(node_count, 0) {}

    /// Number of nodes, n.
    NodeId node_count() const { return static_cast<NodeId>(head_.size()); }
    /// Number of edges, m.
    EdgeId edge_count() const { return static_cast<EdgeId>(edges_.size()); }

    /// Adds an undirected edge {a, b}. Parallel edges and self-loops are
    /// rejected (the paper's model assigns unique per-switch link ids,
    /// which a simple graph always admits).
    EdgeId add_edge(NodeId a, NodeId b);

    /// True if {a, b} is an edge.
    bool has_edge(NodeId a, NodeId b) const;

    /// Edge id of {a, b}, or kNoEdge. O(min degree) over the half-edge
    /// chains; never forces the CSR build.
    EdgeId find_edge(NodeId a, NodeId b) const;

    const Edge& edge(EdgeId e) const {
        FASTNET_EXPECTS(e < edges_.size());
        return edges_[e];
    }

    /// All edges incident to u, in insertion order (deterministic).
    std::span<const IncidentEdge> incident(NodeId u) const {
        FASTNET_EXPECTS(u < node_count());
        if (!csr_valid_) build_csr();
        return {incident_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
    }

    std::size_t degree(NodeId u) const {
        FASTNET_EXPECTS(u < node_count());
        return degree_[u];
    }

    /// Neighbor list of u (materialized copy; prefer incident() in loops).
    std::vector<NodeId> neighbors(NodeId u) const;

    std::span<const Edge> edges() const { return edges_; }

    /// Heap bytes held by this graph (capacities, both the build chains
    /// and the CSR) — a cost::Metrics memory-ledger input.
    std::size_t memory_bytes() const;

private:
    static constexpr std::uint32_t kNoHalf = 0xffffffffu;

    void build_csr() const;

    std::vector<Edge> edges_;
    /// Per node: most recently added incident half-edge, or kNoHalf.
    std::vector<std::uint32_t> head_;
    /// Per half-edge 2e (+1): next half-edge at the same endpoint.
    std::vector<std::uint32_t> half_next_;
    std::vector<std::uint32_t> degree_;

    /// CSR incidence, built lazily from edges_ (see file comment).
    mutable bool csr_valid_ = false;
    mutable std::vector<std::uint32_t> offsets_;  ///< n + 1 prefix sums.
    mutable std::vector<IncidentEdge> incident_;  ///< 2m entries.
};

}  // namespace fastnet::graph
