// Undirected multigraph-free graph with dense node and edge ids.
//
// This is the static description of a network: nodes are NCU-equipped
// switches, edges are bidirectional communication links (Section 2 of the
// paper). Dynamic state (active / inactive links) lives in hw::Network;
// the Graph itself is immutable once built, which lets algorithms and the
// simulator share one instance by const reference.
#pragma once

#include <span>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace fastnet::graph {

/// One endpoint's view of an incident edge.
struct IncidentEdge {
    EdgeId edge = kNoEdge;    ///< Dense edge id.
    NodeId neighbor = kNoNode;  ///< The node on the other side.
};

/// An undirected edge between two distinct nodes.
struct Edge {
    NodeId a = kNoNode;
    NodeId b = kNoNode;

    /// The endpoint that is not `u`. Precondition: u is an endpoint.
    NodeId other(NodeId u) const {
        FASTNET_EXPECTS(u == a || u == b);
        return u == a ? b : a;
    }
};

/// Immutable undirected simple graph.
class Graph {
public:
    Graph() = default;
    explicit Graph(NodeId node_count) : adjacency_(node_count) {}

    /// Number of nodes, n.
    NodeId node_count() const { return static_cast<NodeId>(adjacency_.size()); }
    /// Number of edges, m.
    EdgeId edge_count() const { return static_cast<EdgeId>(edges_.size()); }

    /// Adds an undirected edge {a, b}. Parallel edges and self-loops are
    /// rejected (the paper's model assigns unique per-switch link ids,
    /// which a simple graph always admits).
    EdgeId add_edge(NodeId a, NodeId b);

    /// True if {a, b} is an edge.
    bool has_edge(NodeId a, NodeId b) const;

    /// Edge id of {a, b}, or kNoEdge.
    EdgeId find_edge(NodeId a, NodeId b) const;

    const Edge& edge(EdgeId e) const {
        FASTNET_EXPECTS(e < edges_.size());
        return edges_[e];
    }

    /// All edges incident to u, in insertion order (deterministic).
    std::span<const IncidentEdge> incident(NodeId u) const {
        FASTNET_EXPECTS(u < node_count());
        return adjacency_[u];
    }

    std::size_t degree(NodeId u) const { return incident(u).size(); }

    /// Neighbor list of u (materialized copy; prefer incident() in loops).
    std::vector<NodeId> neighbors(NodeId u) const;

    std::span<const Edge> edges() const { return edges_; }

private:
    std::vector<Edge> edges_;
    std::vector<std::vector<IncidentEdge>> adjacency_;
};

}  // namespace fastnet::graph
