#include "graph/dot.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace fastnet::graph {
namespace {

void emit_node(std::ostream& os, NodeId u, const DotStyle& style) {
    os << "  n" << u << " [label=\"" << u;
    if (u < style.node_annotations.size() && !style.node_annotations[u].empty())
        os << "\\n" << style.node_annotations[u];
    os << "\"];\n";
}

bool highlighted(EdgeId e, const DotStyle& style) {
    return std::find(style.highlighted_edges.begin(), style.highlighted_edges.end(), e) !=
           style.highlighted_edges.end();
}

}  // namespace

void write_dot(std::ostream& os, const Graph& g, const DotStyle& style) {
    os << "graph " << style.graph_name << " {\n";
    for (NodeId u = 0; u < g.node_count(); ++u) emit_node(os, u, style);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
        const Edge& ed = g.edge(e);
        os << "  n" << ed.a << " -- n" << ed.b;
        if (highlighted(e, style)) os << " [penwidth=3]";
        os << ";\n";
    }
    os << "}\n";
}

void write_dot(std::ostream& os, const RootedTree& t, const DotStyle& style) {
    os << "digraph " << style.graph_name << " {\n";
    for (NodeId u : t.preorder()) emit_node(os, u, style);
    for (NodeId u : t.preorder()) {
        for (NodeId c : t.children(u)) os << "  n" << u << " -> n" << c << ";\n";
    }
    os << "}\n";
}

std::string to_dot(const Graph& g, const DotStyle& style) {
    std::ostringstream os;
    write_dot(os, g, style);
    return os.str();
}

std::string to_dot(const RootedTree& t, const DotStyle& style) {
    std::ostringstream os;
    write_dot(os, t, style);
    return os.str();
}

}  // namespace fastnet::graph
