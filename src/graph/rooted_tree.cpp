#include "graph/rooted_tree.hpp"

#include <algorithm>

#include "graph/graph.hpp"

namespace fastnet::graph {

RootedTree::RootedTree(NodeId root, std::vector<NodeId> parent)
    : root_(root), parent_(std::move(parent)), children_(parent_.size()) {
    FASTNET_EXPECTS(root < parent_.size());
    FASTNET_EXPECTS_MSG(parent_[root] == kNoNode, "root must have no parent");
    for (NodeId u = 0; u < parent_.size(); ++u) {
        if (u == root_ || parent_[u] == kNoNode) continue;
        FASTNET_EXPECTS_MSG(parent_[u] < parent_.size(), "parent id out of range");
        children_[parent_[u]].push_back(u);
    }
    // Count present nodes and verify acyclicity / reachability from root.
    std::vector<NodeId> order = preorder();
    size_ = static_cast<NodeId>(order.size());
    NodeId present = 1;  // root
    for (NodeId u = 0; u < parent_.size(); ++u)
        if (u != root_ && parent_[u] != kNoNode) ++present;
    FASTNET_EXPECTS_MSG(present == size_,
                        "parent vector contains a cycle or a node unreachable from root");
}

unsigned RootedTree::depth(NodeId u) const {
    unsigned d = 0;
    while (u != root_) {
        u = parent(u);
        ++d;
        FASTNET_ENSURES_MSG(d <= parent_.size(), "cycle in tree");
    }
    return d;
}

unsigned RootedTree::height() const {
    unsigned h = 0;
    std::vector<std::pair<NodeId, unsigned>> stack{{root_, 0}};
    while (!stack.empty()) {
        auto [u, d] = stack.back();
        stack.pop_back();
        h = std::max(h, d);
        for (NodeId c : children(u)) stack.emplace_back(c, d + 1);
    }
    return h;
}

std::vector<NodeId> RootedTree::preorder() const {
    std::vector<NodeId> out;
    if (root_ == kNoNode) return out;
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
        NodeId u = stack.back();
        stack.pop_back();
        out.push_back(u);
        FASTNET_ENSURES_MSG(out.size() <= parent_.size(), "cycle in tree");
        // Push children in reverse so the traversal visits them in order.
        auto cs = children(u);
        for (auto it = cs.rbegin(); it != cs.rend(); ++it) stack.push_back(*it);
    }
    return out;
}

std::vector<NodeId> RootedTree::postorder() const {
    std::vector<NodeId> pre = preorder();
    std::reverse(pre.begin(), pre.end());
    return pre;  // reverse preorder: every child precedes its parent
}

std::vector<NodeId> RootedTree::subtree_sizes() const {
    std::vector<NodeId> sizes(parent_.size(), 0);
    for (NodeId u : postorder()) {
        sizes[u] += 1;
        if (u != root_) sizes[parent_[u]] += sizes[u];
    }
    return sizes;
}

std::vector<NodeId> RootedTree::path_from_root(NodeId u) const {
    std::vector<NodeId> path;
    NodeId v = u;
    while (true) {
        path.push_back(v);
        if (v == root_) break;
        v = parent(v);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

bool RootedTree::is_subgraph_of(const Graph& g) const {
    for (NodeId u = 0; u < parent_.size(); ++u) {
        if (u == root_ || parent_[u] == kNoNode) continue;
        if (!g.has_edge(u, parent_[u])) return false;
    }
    return true;
}

}  // namespace fastnet::graph
