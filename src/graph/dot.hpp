// Graphviz DOT export for graphs and rooted trees — debugging aid and
// documentation generator (the examples can dump what they build).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/rooted_tree.hpp"

namespace fastnet::graph {

struct DotStyle {
    std::string graph_name = "fastnet";
    /// Optional per-node extra label lines (e.g. the Section 3 labels);
    /// empty vector = ids only.
    std::vector<std::string> node_annotations;
    /// Edges to render highlighted (e.g. a spanning tree inside the
    /// graph), by edge id.
    std::vector<EdgeId> highlighted_edges;
};

/// Writes an undirected graph as DOT.
void write_dot(std::ostream& os, const Graph& g, const DotStyle& style = {});

/// Writes a rooted tree as a directed DOT (edges parent -> child).
void write_dot(std::ostream& os, const RootedTree& t, const DotStyle& style = {});

/// Convenience: DOT as a string.
std::string to_dot(const Graph& g, const DotStyle& style = {});
std::string to_dot(const RootedTree& t, const DotStyle& style = {});

}  // namespace fastnet::graph
