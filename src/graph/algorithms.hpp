// Classic graph algorithms needed as substrates: BFS / min-hop spanning
// trees (the T_i(t) of Section 3), connectivity and diameter.
//
// All algorithms accept an optional edge filter so they can run on the
// *known* or *active* subgraph (topology maintenance computes trees over
// the node's possibly stale view G_i(t)).
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"
#include "graph/rooted_tree.hpp"

namespace fastnet::graph {

/// Predicate deciding whether an edge participates; default: all edges.
using EdgeFilter = std::function<bool(EdgeId)>;

/// Result of a BFS from a source node.
struct BfsResult {
    std::vector<NodeId> parent;    ///< BFS-tree parent, kNoNode at source/unreached.
    std::vector<unsigned> dist;    ///< Hop distance, kUnreached if unreached.
    static constexpr unsigned kUnreached = ~0u;
};

/// Breadth-first search over edges passing `filter`. Neighbors are
/// explored in adjacency (insertion) order, so the result is deterministic
/// and ties in the min-hop tree resolve to the lowest-insertion edge.
BfsResult bfs(const Graph& g, NodeId source, const EdgeFilter& filter = {});

/// Min-hop spanning tree of `source`'s reachable component (the paper's
/// T_i(t): "a spanning tree (rooted at i) of minimum hop paths").
RootedTree min_hop_tree(const Graph& g, NodeId source, const EdgeFilter& filter = {});

/// Component label per node (labels are 0-based, ordered by least node).
std::vector<NodeId> connected_components(const Graph& g, const EdgeFilter& filter = {});

/// True if all nodes are in one component.
bool is_connected(const Graph& g, const EdgeFilter& filter = {});

/// True if g is a tree (connected, m == n-1).
bool is_tree(const Graph& g);

/// Exact diameter in hops (max over nodes of BFS eccentricity); O(n(m+n)).
/// Returns 0 for a single node; requires a connected graph.
unsigned diameter(const Graph& g);

/// Eccentricity of u (max hop distance to any reachable node).
unsigned eccentricity(const Graph& g, NodeId u, const EdgeFilter& filter = {});

}  // namespace fastnet::graph
