// Rooted tree representation used by the broadcast path decomposition
// (Section 3), the election virtual trees (Section 4) and the optimal
// gather trees OT(t) (Section 5).
#pragma once

#include <span>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace fastnet::graph {

class Graph;

/// A rooted tree over nodes 0..n-1. Not every node need appear: nodes with
/// parent == kNoNode and not equal to root() are "absent" (useful when the
/// tree spans only one connected component).
class RootedTree {
public:
    RootedTree() = default;

    /// Builds from a parent vector. parent[root] must be kNoNode; any other
    /// node with parent kNoNode is treated as absent from the tree.
    RootedTree(NodeId root, std::vector<NodeId> parent);

    NodeId root() const { return root_; }
    NodeId node_capacity() const { return static_cast<NodeId>(parent_.size()); }

    /// Number of nodes actually present in the tree.
    NodeId size() const { return size_; }

    bool contains(NodeId u) const {
        return u < parent_.size() && (u == root_ || parent_[u] != kNoNode);
    }

    NodeId parent(NodeId u) const {
        FASTNET_EXPECTS(contains(u));
        return parent_[u];
    }

    std::span<const NodeId> children(NodeId u) const {
        FASTNET_EXPECTS(contains(u));
        return children_[u];
    }

    bool is_leaf(NodeId u) const { return children(u).empty(); }

    /// Depth of node u (root has depth 0).
    unsigned depth(NodeId u) const;

    /// Height of the whole tree (max depth over present nodes).
    unsigned height() const;

    /// Present nodes in a deterministic preorder (parent before child).
    std::vector<NodeId> preorder() const;

    /// Present nodes so that every child appears before its parent.
    std::vector<NodeId> postorder() const;

    /// Number of nodes in the subtree rooted at each present node.
    std::vector<NodeId> subtree_sizes() const;

    /// The path root -> u as a node sequence.
    std::vector<NodeId> path_from_root(NodeId u) const;

    /// Checks that every tree edge is an edge of g (i.e. the tree is a
    /// subgraph of the network, as T_i(t) must be in Section 3).
    bool is_subgraph_of(const Graph& g) const;

private:
    NodeId root_ = kNoNode;
    NodeId size_ = 0;
    std::vector<NodeId> parent_;
    std::vector<std::vector<NodeId>> children_;
};

}  // namespace fastnet::graph
