#include "graph/graph.hpp"

#include <algorithm>

namespace fastnet::graph {

EdgeId Graph::add_edge(NodeId a, NodeId b) {
    FASTNET_EXPECTS(a < node_count() && b < node_count());
    FASTNET_EXPECTS_MSG(a != b, "self-loops are not part of the model");
    FASTNET_EXPECTS_MSG(!has_edge(a, b), "parallel edges are not part of the model");
    const EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(Edge{a, b});
    adjacency_[a].push_back(IncidentEdge{id, b});
    adjacency_[b].push_back(IncidentEdge{id, a});
    return id;
}

bool Graph::has_edge(NodeId a, NodeId b) const { return find_edge(a, b) != kNoEdge; }

EdgeId Graph::find_edge(NodeId a, NodeId b) const {
    if (a >= node_count() || b >= node_count()) return kNoEdge;
    // Scan the smaller adjacency list.
    const NodeId u = degree(a) <= degree(b) ? a : b;
    const NodeId v = (u == a) ? b : a;
    for (const IncidentEdge& ie : adjacency_[u])
        if (ie.neighbor == v) return ie.edge;
    return kNoEdge;
}

std::vector<NodeId> Graph::neighbors(NodeId u) const {
    std::vector<NodeId> out;
    out.reserve(degree(u));
    for (const IncidentEdge& ie : incident(u)) out.push_back(ie.neighbor);
    return out;
}

}  // namespace fastnet::graph
