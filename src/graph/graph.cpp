#include "graph/graph.hpp"

namespace fastnet::graph {

EdgeId Graph::add_edge(NodeId a, NodeId b) {
    FASTNET_EXPECTS(a < node_count() && b < node_count());
    FASTNET_EXPECTS_MSG(a != b, "self-loops are not part of the model");
    FASTNET_EXPECTS_MSG(!has_edge(a, b), "parallel edges are not part of the model");
    const EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(Edge{a, b});
    half_next_.push_back(head_[a]);
    head_[a] = 2 * id;
    half_next_.push_back(head_[b]);
    head_[b] = 2 * id + 1;
    ++degree_[a];
    ++degree_[b];
    csr_valid_ = false;
    return id;
}

bool Graph::has_edge(NodeId a, NodeId b) const { return find_edge(a, b) != kNoEdge; }

EdgeId Graph::find_edge(NodeId a, NodeId b) const {
    if (a >= node_count() || b >= node_count()) return kNoEdge;
    // Walk the smaller endpoint's half-edge chain.
    const NodeId u = degree_[a] <= degree_[b] ? a : b;
    const NodeId v = (u == a) ? b : a;
    for (std::uint32_t h = head_[u]; h != kNoHalf; h = half_next_[h]) {
        const Edge& e = edges_[h >> 1];
        if (((h & 1) == 0 ? e.b : e.a) == v) return static_cast<EdgeId>(h >> 1);
    }
    return kNoEdge;
}

void Graph::build_csr() const {
    const NodeId n = node_count();
    offsets_.assign(n + 1, 0);
    for (NodeId u = 0; u < n; ++u) offsets_[u + 1] = offsets_[u] + degree_[u];
    incident_.resize(std::size_t{2} * edges_.size());
    // Counting pass in edge-id order: per-node chains were appended in the
    // same order, so this reproduces insertion order exactly.
    std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (EdgeId e = 0; e < edges_.size(); ++e) {
        const Edge& ed = edges_[e];
        incident_[cursor[ed.a]++] = IncidentEdge{e, ed.b};
        incident_[cursor[ed.b]++] = IncidentEdge{e, ed.a};
    }
    csr_valid_ = true;
}

std::vector<NodeId> Graph::neighbors(NodeId u) const {
    std::vector<NodeId> out;
    out.reserve(degree(u));
    for (const IncidentEdge& ie : incident(u)) out.push_back(ie.neighbor);
    return out;
}

std::size_t Graph::memory_bytes() const {
    return edges_.capacity() * sizeof(Edge) + head_.capacity() * sizeof(std::uint32_t) +
           half_next_.capacity() * sizeof(std::uint32_t) +
           degree_.capacity() * sizeof(std::uint32_t) +
           offsets_.capacity() * sizeof(std::uint32_t) +
           incident_.capacity() * sizeof(IncidentEdge);
}

}  // namespace fastnet::graph
