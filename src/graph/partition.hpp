// Spatial graph partitioning for the parallel event kernel.
//
// The conservative-PDES kernel (node/parallel_cluster.hpp) assigns every
// node to exactly one shard and runs shards concurrently in bounded time
// windows. The window width is the *lookahead*: the minimum per-hop link
// delay over edges that cross a shard boundary — a packet leaving shard A
// at time t cannot arrive in shard B before t + lookahead, so shards may
// safely run [t, t + lookahead) without hearing from each other. Fewer
// boundary edges therefore mean both less cross-shard traffic at window
// barriers and (with heterogeneous delays) potentially wider windows.
//
// partition_bfs grows shards as contiguous BFS regions: each shard is a
// ball of adjacent nodes, so most edges stay internal — the spatial
// locality the paper's link-delay model rewards. The result is a pure
// function of (graph, shard count): no RNG, no iteration-order
// dependence, so a partition — and hence the sharded event order built
// on top of it — is reproducible across runs and thread counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace fastnet::graph {

struct Partition {
    std::uint32_t shard_count = 1;
    /// shard_of[u] in [0, shard_count) for every node u.
    std::vector<std::uint32_t> shard_of;
    /// Edges whose endpoints land in different shards, ascending EdgeId.
    std::vector<EdgeId> boundary_edges;
    /// Nodes per shard; sums to node_count().
    std::vector<std::uint32_t> shard_size;

    bool boundary(const Graph& g, EdgeId e) const {
        return shard_of[g.edge(e).a] != shard_of[g.edge(e).b];
    }
};

/// Deterministic contiguous partition into `shards` parts (clamped to
/// [1, node_count]; a zero-node graph yields one empty shard). Shards are
/// grown one at a time by BFS from the lowest-numbered unassigned node;
/// shard s takes ceil(remaining / remaining_shards) nodes, so sizes never
/// differ by more than one. Disconnected graphs are handled by restarting
/// the BFS frontier at the next unassigned node.
Partition partition_bfs(const Graph& g, std::uint32_t shards);

/// Delay-aware variant for heterogeneous link delays: same quota and
/// seeding rules as partition_bfs, but each shard grows Prim-style,
/// always absorbing the unassigned node reachable over the *cheapest*
/// (lowest `edge_min_delay`) connecting edge — ties broken by node id.
/// Cheap edges are pulled inside shards, so the edges left on the
/// boundary skew expensive: the conservative kernel's lookahead (the
/// minimum boundary-crossing delay) can only match or beat the
/// delay-blind partition's on the same graph. Deterministic: a pure
/// function of (graph, shards, delays). `edge_min_delay[e]` is the
/// minimum delay of edge e; the span must cover every edge.
Partition partition_bfs_weighted(const Graph& g, std::uint32_t shards,
                                 std::span<const Tick> edge_min_delay);

}  // namespace fastnet::graph
