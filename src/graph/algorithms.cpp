#include "graph/algorithms.hpp"

#include <algorithm>

namespace fastnet::graph {

BfsResult bfs(const Graph& g, NodeId source, const EdgeFilter& filter) {
    FASTNET_EXPECTS(source < g.node_count());
    BfsResult r;
    r.parent.assign(g.node_count(), kNoNode);
    r.dist.assign(g.node_count(), BfsResult::kUnreached);
    r.dist[source] = 0;
    std::vector<NodeId> queue{source};
    for (std::size_t h = 0; h < queue.size(); ++h) {
        const NodeId u = queue[h];
        for (const IncidentEdge& ie : g.incident(u)) {
            if (filter && !filter(ie.edge)) continue;
            if (r.dist[ie.neighbor] != BfsResult::kUnreached) continue;
            r.dist[ie.neighbor] = r.dist[u] + 1;
            r.parent[ie.neighbor] = u;
            queue.push_back(ie.neighbor);
        }
    }
    return r;
}

RootedTree min_hop_tree(const Graph& g, NodeId source, const EdgeFilter& filter) {
    BfsResult r = bfs(g, source, filter);
    return RootedTree(source, std::move(r.parent));
}

std::vector<NodeId> connected_components(const Graph& g, const EdgeFilter& filter) {
    std::vector<NodeId> label(g.node_count(), kNoNode);
    NodeId next = 0;
    for (NodeId s = 0; s < g.node_count(); ++s) {
        if (label[s] != kNoNode) continue;
        const NodeId comp = next++;
        std::vector<NodeId> queue{s};
        label[s] = comp;
        for (std::size_t h = 0; h < queue.size(); ++h) {
            for (const IncidentEdge& ie : g.incident(queue[h])) {
                if (filter && !filter(ie.edge)) continue;
                if (label[ie.neighbor] == kNoNode) {
                    label[ie.neighbor] = comp;
                    queue.push_back(ie.neighbor);
                }
            }
        }
    }
    return label;
}

bool is_connected(const Graph& g, const EdgeFilter& filter) {
    if (g.node_count() == 0) return true;
    const auto labels = connected_components(g, filter);
    return std::all_of(labels.begin(), labels.end(),
                       [](NodeId l) { return l == 0; });
}

bool is_tree(const Graph& g) {
    return g.node_count() >= 1 && g.edge_count() + 1 == g.node_count() && is_connected(g);
}

unsigned eccentricity(const Graph& g, NodeId u, const EdgeFilter& filter) {
    const BfsResult r = bfs(g, u, filter);
    unsigned ecc = 0;
    for (unsigned d : r.dist) {
        FASTNET_EXPECTS_MSG(d != BfsResult::kUnreached, "eccentricity needs connectivity");
        ecc = std::max(ecc, d);
    }
    return ecc;
}

unsigned diameter(const Graph& g) {
    FASTNET_EXPECTS(g.node_count() >= 1);
    unsigned d = 0;
    for (NodeId u = 0; u < g.node_count(); ++u) d = std::max(d, eccentricity(g, u));
    return d;
}

}  // namespace fastnet::graph
