#include "graph/partition.hpp"

#include <queue>

#include "common/expect.hpp"

namespace fastnet::graph {

Partition partition_bfs(const Graph& g, std::uint32_t shards) {
    const std::uint32_t n = g.node_count();
    Partition p;
    p.shard_count = shards < 1 ? 1 : shards;
    if (p.shard_count > n) p.shard_count = n < 1 ? 1 : n;
    p.shard_of.assign(n, 0);
    p.shard_size.assign(p.shard_count, 0);
    if (n == 0) return p;

    std::vector<bool> assigned(n, false);
    std::vector<NodeId> frontier;  // FIFO via cursor; lowest-id seeds first
    NodeId scan = 0;               // next candidate seed / restart point
    std::uint32_t taken = 0;

    for (std::uint32_t s = 0; s < p.shard_count; ++s) {
        // Equal split of what is left: ceil(remaining / remaining_shards).
        const std::uint32_t remaining = n - taken;
        const std::uint32_t remaining_shards = p.shard_count - s;
        std::uint32_t quota = (remaining + remaining_shards - 1) / remaining_shards;
        frontier.clear();
        std::size_t cursor = 0;
        while (quota > 0) {
            if (cursor == frontier.size()) {
                // Frontier exhausted (fresh shard or disconnected graph):
                // seed from the lowest-numbered unassigned node.
                while (assigned[scan]) ++scan;
                frontier.push_back(scan);
                assigned[scan] = true;
            }
            const NodeId u = frontier[cursor++];
            p.shard_of[u] = s;
            ++p.shard_size[s];
            ++taken;
            --quota;
            if (quota == 0) break;
            for (const IncidentEdge& ie : g.incident(u)) {
                if (assigned[ie.neighbor]) continue;
                assigned[ie.neighbor] = true;
                frontier.push_back(ie.neighbor);
            }
        }
        // Nodes pulled into the frontier but not consumed by this shard's
        // quota go back to the pool for the next shard's BFS to re-reach
        // (or for its seed scan to pick up).
        for (std::size_t i = cursor; i < frontier.size(); ++i)
            assigned[frontier[i]] = false;
    }
    FASTNET_ENSURES(taken == n);

    for (EdgeId e = 0; e < g.edge_count(); ++e)
        if (p.boundary(g, e)) p.boundary_edges.push_back(e);
    return p;
}

Partition partition_bfs_weighted(const Graph& g, std::uint32_t shards,
                                 std::span<const Tick> edge_min_delay) {
    FASTNET_EXPECTS(edge_min_delay.size() >= g.edge_count());
    const std::uint32_t n = g.node_count();
    Partition p;
    p.shard_count = shards < 1 ? 1 : shards;
    if (p.shard_count > n) p.shard_count = n < 1 ? 1 : n;
    p.shard_of.assign(n, 0);
    p.shard_size.assign(p.shard_count, 0);
    if (n == 0) return p;

    std::vector<bool> assigned(n, false);
    // Min-heap of (cheapest connecting delay, node). A node may sit in
    // the heap several times (once per discovering edge); stale and
    // already-assigned entries are skipped on pop. Lexicographic pair
    // order gives the deterministic tie-break by node id.
    using Cand = std::pair<Tick, NodeId>;
    std::priority_queue<Cand, std::vector<Cand>, std::greater<Cand>> heap;
    NodeId scan = 0;
    std::uint32_t taken = 0;

    for (std::uint32_t s = 0; s < p.shard_count; ++s) {
        const std::uint32_t remaining = n - taken;
        const std::uint32_t remaining_shards = p.shard_count - s;
        std::uint32_t quota = (remaining + remaining_shards - 1) / remaining_shards;
        heap = {};
        while (quota > 0) {
            NodeId u = kNoNode;
            while (!heap.empty()) {
                const NodeId cand = heap.top().second;
                heap.pop();
                if (!assigned[cand]) {
                    u = cand;
                    break;
                }
            }
            if (u == kNoNode) {
                // Fresh shard or disconnected graph: seed from the
                // lowest-numbered unassigned node, as partition_bfs does.
                while (assigned[scan]) ++scan;
                u = scan;
            }
            assigned[u] = true;
            p.shard_of[u] = s;
            ++p.shard_size[s];
            ++taken;
            --quota;
            if (quota == 0) break;
            for (const IncidentEdge& ie : g.incident(u)) {
                if (assigned[ie.neighbor]) continue;
                heap.emplace(edge_min_delay[ie.edge], ie.neighbor);
            }
        }
        // Unconsumed candidates simply stay unassigned; the next shard
        // re-reaches them through its own growth or seed scan.
    }
    FASTNET_ENSURES(taken == n);

    for (EdgeId e = 0; e < g.edge_count(); ++e)
        if (p.boundary(g, e)) p.boundary_edges.push_back(e);
    return p;
}

}  // namespace fastnet::graph
