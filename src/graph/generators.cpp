#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>

namespace fastnet::graph {

Graph make_path(NodeId n) {
    FASTNET_EXPECTS(n >= 1);
    Graph g(n);
    for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
    return g;
}

Graph make_cycle(NodeId n) {
    FASTNET_EXPECTS(n >= 3);
    Graph g(n);
    for (NodeId i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
    return g;
}

Graph make_star(NodeId n) {
    FASTNET_EXPECTS(n >= 1);
    Graph g(n);
    for (NodeId i = 1; i < n; ++i) g.add_edge(0, i);
    return g;
}

Graph make_complete(NodeId n) {
    FASTNET_EXPECTS(n >= 1);
    Graph g(n);
    for (NodeId i = 0; i < n; ++i)
        for (NodeId j = i + 1; j < n; ++j) g.add_edge(i, j);
    return g;
}

Graph make_complete_binary_tree(unsigned depth) {
    const NodeId n = static_cast<NodeId>((1ULL << (depth + 1)) - 1);
    Graph g(n);
    for (NodeId i = 1; i < n; ++i) g.add_edge((i - 1) / 2, i);
    return g;
}

Graph make_kary_tree(NodeId n, unsigned k) {
    FASTNET_EXPECTS(n >= 1 && k >= 1);
    Graph g(n);
    for (NodeId i = 1; i < n; ++i) g.add_edge((i - 1) / k, i);
    return g;
}

Graph make_caterpillar(NodeId spine, NodeId legs) {
    FASTNET_EXPECTS(spine >= 1);
    const NodeId n = spine + spine * legs;
    Graph g(n);
    for (NodeId i = 0; i + 1 < spine; ++i) g.add_edge(i, i + 1);
    NodeId next = spine;
    for (NodeId i = 0; i < spine; ++i)
        for (NodeId l = 0; l < legs; ++l) g.add_edge(i, next++);
    return g;
}

Graph make_grid(NodeId width, NodeId height) {
    FASTNET_EXPECTS(width >= 1 && height >= 1);
    Graph g(width * height);
    auto id = [width](NodeId x, NodeId y) { return y * width + x; };
    for (NodeId y = 0; y < height; ++y)
        for (NodeId x = 0; x < width; ++x) {
            if (x + 1 < width) g.add_edge(id(x, y), id(x + 1, y));
            if (y + 1 < height) g.add_edge(id(x, y), id(x, y + 1));
        }
    return g;
}

Graph make_hypercube(unsigned dim) {
    FASTNET_EXPECTS(dim <= 20);
    const NodeId n = static_cast<NodeId>(1u << dim);
    Graph g(n);
    for (NodeId u = 0; u < n; ++u)
        for (unsigned b = 0; b < dim; ++b) {
            const NodeId v = u ^ (1u << b);
            if (u < v) g.add_edge(u, v);
        }
    return g;
}

Graph make_random_tree(NodeId n, Rng& rng) {
    FASTNET_EXPECTS(n >= 1);
    Graph g(n);
    if (n == 1) return g;
    if (n == 2) {
        g.add_edge(0, 1);
        return g;
    }
    // Decode a uniformly random Pruefer sequence of length n-2.
    std::vector<NodeId> pruefer(n - 2);
    for (auto& x : pruefer) x = static_cast<NodeId>(rng.below(n));
    std::vector<unsigned> deg(n, 1);
    for (NodeId x : pruefer) ++deg[x];
    // Min-heap free of <queue> noise: we need the smallest leaf each step.
    std::vector<NodeId> leaves;
    for (NodeId i = 0; i < n; ++i)
        if (deg[i] == 1) leaves.push_back(i);
    std::make_heap(leaves.begin(), leaves.end(), std::greater<>{});
    for (NodeId x : pruefer) {
        std::pop_heap(leaves.begin(), leaves.end(), std::greater<>{});
        const NodeId leaf = leaves.back();
        leaves.pop_back();
        g.add_edge(leaf, x);
        if (--deg[x] == 1) {
            leaves.push_back(x);
            std::push_heap(leaves.begin(), leaves.end(), std::greater<>{});
        }
    }
    std::pop_heap(leaves.begin(), leaves.end(), std::greater<>{});
    const NodeId a = leaves.back();
    leaves.pop_back();
    const NodeId b = leaves.front();
    g.add_edge(a, b);
    return g;
}

Graph make_random_connected(NodeId n, std::uint64_t p_num, std::uint64_t p_den, Rng& rng) {
    FASTNET_EXPECTS(n >= 1);
    Graph tree = make_random_tree(n, rng);
    Graph g(n);
    for (const Edge& e : tree.edges()) g.add_edge(e.a, e.b);
    for (NodeId i = 0; i < n; ++i)
        for (NodeId j = i + 1; j < n; ++j)
            if (!g.has_edge(i, j) && rng.chance(p_num, p_den)) g.add_edge(i, j);
    return g;
}

Graph make_podc_example() {
    Graph g(6);
    g.add_edge(0, 1);  // (u, v)
    g.add_edge(1, 2);  // (v, w)
    g.add_edge(2, 0);  // (w, u)
    g.add_edge(0, 3);  // (u, u1)
    g.add_edge(1, 4);  // (v, v1)
    g.add_edge(2, 5);  // (w, w1)
    return g;
}

Graph disjoint_union(const Graph& a, const Graph& b) {
    Graph g(a.node_count() + b.node_count());
    for (const Edge& e : a.edges()) g.add_edge(e.a, e.b);
    const NodeId off = a.node_count();
    for (const Edge& e : b.edges()) g.add_edge(e.a + off, e.b + off);
    return g;
}

RootedTree random_spanning_tree(const Graph& g, NodeId root, Rng& rng) {
    FASTNET_EXPECTS(root < g.node_count());
    std::vector<EdgeId> order(g.edge_count());
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);
    // Union-find over nodes.
    std::vector<NodeId> dsu(g.node_count());
    std::iota(dsu.begin(), dsu.end(), 0u);
    auto find = [&dsu](NodeId x) {
        while (dsu[x] != x) {
            dsu[x] = dsu[dsu[x]];
            x = dsu[x];
        }
        return x;
    };
    Graph tree(g.node_count());
    for (EdgeId e : order) {
        const Edge& ed = g.edge(e);
        const NodeId ra = find(ed.a), rb = find(ed.b);
        if (ra != rb) {
            dsu[ra] = rb;
            tree.add_edge(ed.a, ed.b);
        }
    }
    // Orient the tree away from root by BFS.
    std::vector<NodeId> parent(g.node_count(), kNoNode);
    std::vector<NodeId> queue{root};
    std::vector<bool> seen(g.node_count(), false);
    seen[root] = true;
    for (std::size_t h = 0; h < queue.size(); ++h) {
        const NodeId u = queue[h];
        for (const IncidentEdge& ie : tree.incident(u)) {
            if (!seen[ie.neighbor]) {
                seen[ie.neighbor] = true;
                parent[ie.neighbor] = u;
                queue.push_back(ie.neighbor);
            }
        }
    }
    return RootedTree(root, std::move(parent));
}

}  // namespace fastnet::graph
