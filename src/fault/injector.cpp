#include "fault/injector.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace fastnet::fault {

node::Scenario FaultInjector::compile(const graph::Graph& g) const {
    FASTNET_EXPECTS(model_.window_from <= model_.window_to);
    // One private generator per compilation: the script depends only on
    // (model, seed, graph), never on who compiles it or when.
    Rng rng(Rng::stream(seed_, 0xc4a05ULL).next());

    node::ChurnSpec spec;
    spec.link_events = model_.link_flaps;
    spec.node_events = model_.node_crashes;
    spec.from = model_.window_from;
    spec.to = model_.window_to;
    spec.protect = model_.protect;
    spec.protect_nodes = model_.protect_nodes;
    spec.crash_nodes = model_.crash_nodes;
    node::Scenario s = node::Scenario::random_churn(g, spec, rng);

    if (model_.stalls > 0) {
        FASTNET_EXPECTS_MSG(model_.stall_max > 0, "stalls > 0 needs stall_max > 0");
        std::vector<NodeId> allowed;
        allowed.reserve(g.node_count());
        for (NodeId u = 0; u < g.node_count(); ++u)
            if (std::find(model_.protect_nodes.begin(), model_.protect_nodes.end(), u) ==
                model_.protect_nodes.end())
                allowed.push_back(u);
        FASTNET_EXPECTS_MSG(!allowed.empty(),
                            "fault model: every node is protected but stalls > 0");
        for (unsigned i = 0; i < model_.stalls; ++i) {
            const NodeId u = allowed[rng.below(allowed.size())];
            const Tick at =
                model_.window_from +
                static_cast<Tick>(rng.below(
                    static_cast<std::uint64_t>(model_.window_to - model_.window_from) + 1));
            s.stall_node(at, u, rng.range(1, model_.stall_max));
        }
    }

    if (model_.heal_at > 0) {
        FASTNET_EXPECTS_MSG(model_.heal_at >= model_.window_to,
                            "heal_at inside the fault window would not heal");
        s.heal_all(model_.heal_at);
    }
    return s;
}

void FaultInjector::configure(node::ClusterConfig& config) const {
    config.net.loss_ppm = model_.loss_ppm;
    config.net.dup_ppm = model_.dup_ppm;
    if (model_.trace_capacity > 0 && !config.trace)
        config.trace = std::make_shared<sim::Trace>(model_.trace_capacity);
}

}  // namespace fastnet::fault
