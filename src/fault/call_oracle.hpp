// The capacity-conservation oracle for the PARIS call workload.
//
// The call agents keep a distributed bandwidth ledger: the upstream node
// of every directed hop owns that hop's reservation. Under overload,
// message loss, duplication and crash-restart churn, three invariants
// must survive (docs/ROBUSTNESS.md "Calls under fire"):
//
//   * conserved  — at every node, the per-edge ledger equals the sum of
//                  demands of the records that hold that edge, and never
//                  exceeds the configured link capacity (no overbooking,
//                  no phantom units, no double-release);
//   * terminal   — once the workload has drained to quiescence, no
//                  record at a live node is stuck in a non-terminal
//                  state (kSettingUp/kReserved/kActive/kBackoff);
//   * released   — every reservation was given back: the hardened
//                  machine's whole point is that a lost ACCEPT or
//                  TAKEDOWN may delay release (timeout, lease reap) but
//                  can never leak capacity forever.
//
// Like fault::Oracle, checks accumulate readable violations instead of
// throwing, so a chaos sweep reports every broken invariant of a seed at
// once; crashed-and-not-restarted nodes are skipped (their ledgers died
// with them — the *downstream* consequences show up at live nodes).
#pragma once

#include "fault/oracle.hpp"
#include "node/cluster.hpp"

namespace fastnet::node {
class ParallelCluster;
}

namespace fastnet::fault {

class CallOracle {
public:
    explicit CallOracle(const node::Cluster& cluster) : seq_(&cluster) {}
    /// Parallel-kernel overload: each node's agent lives in its owning
    /// shard; reading all of them visits every shard's ledger.
    explicit CallOracle(const node::ParallelCluster& cluster) : par_(&cluster) {}

    /// Per-edge ledger == sum of record demands holding that edge, and
    /// ledger <= link capacity, at every live call agent.
    CallOracle& require_conserved();

    /// No record at a live agent is in a non-terminal state.
    CallOracle& require_terminal();

    /// No capacity is held anywhere (the quiesced end-state of a
    /// workload whose calls all carry finite hold times).
    CallOracle& require_released();

    const OracleReport& report() const { return report_; }
    bool ok() const { return report_.ok(); }

private:
    void fail(std::string msg) { report_.violations.push_back(std::move(msg)); }

    NodeId node_count() const;
    bool crashed(NodeId u) const;
    const node::Protocol& protocol(NodeId u) const;

    const node::Cluster* seq_ = nullptr;
    const node::ParallelCluster* par_ = nullptr;
    OracleReport report_;
};

/// The standard bundle: conserved + terminal + released.
OracleReport check_calls(const node::Cluster& cluster);
OracleReport check_calls(const node::ParallelCluster& cluster);

}  // namespace fastnet::fault
