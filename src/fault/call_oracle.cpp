#include "fault/call_oracle.hpp"

#include <map>
#include <string>

#include "node/parallel_cluster.hpp"
#include "paris/call_setup.hpp"

namespace fastnet::fault {
namespace {

const paris::CallAgentProtocol* agent_of(const node::Protocol& p) {
    return dynamic_cast<const paris::CallAgentProtocol*>(&p);
}

std::string call_str(paris::CallId id) {
    return std::to_string(id.source) + "." + std::to_string(id.seq);
}

}  // namespace

NodeId CallOracle::node_count() const {
    return seq_ ? seq_->node_count() : par_->node_count();
}

bool CallOracle::crashed(NodeId u) const {
    return seq_ ? seq_->crashed(u) : par_->crashed(u);
}

const node::Protocol& CallOracle::protocol(NodeId u) const {
    return seq_ ? seq_->protocol(u) : par_->protocol(u);
}

CallOracle& CallOracle::require_conserved() {
    for (NodeId u = 0; u < node_count(); ++u) {
        if (crashed(u)) continue;
        const auto* agent = agent_of(protocol(u));
        if (agent == nullptr) continue;
        // Recompute the ledger from the records and compare exactly.
        std::map<EdgeId, std::uint64_t> expected;
        for (const paris::CallRecord& r : agent->call_records()) {
            if (r.reserved_edge == kNoEdge) continue;
            if (paris::call_state_terminal(r.state)) {
                fail("node " + std::to_string(u) + ": terminal call " + call_str(r.id) +
                     " (" + paris::call_state_name(r.state) + ") still holds edge " +
                     std::to_string(r.reserved_edge));
                continue;
            }
            expected[r.reserved_edge] += r.demand;
        }
        const std::uint32_t cap = agent->options().link_capacity;
        for (const auto& [edge, held] : agent->reserved_entries()) {
            const auto it = expected.find(edge);
            const std::uint64_t want = it == expected.end() ? 0 : it->second;
            if (held != want)
                fail("node " + std::to_string(u) + ": edge " + std::to_string(edge) +
                     " ledger holds " + std::to_string(held) + " but records account for " +
                     std::to_string(want));
            if (held > cap)
                fail("node " + std::to_string(u) + ": edge " + std::to_string(edge) +
                     " overbooked: " + std::to_string(held) + " > capacity " +
                     std::to_string(cap));
            expected.erase(edge);
        }
        for (const auto& [edge, want] : expected) {
            if (want != 0)
                fail("node " + std::to_string(u) + ": records hold " + std::to_string(want) +
                     " units of edge " + std::to_string(edge) + " missing from the ledger");
        }
    }
    return *this;
}

CallOracle& CallOracle::require_terminal() {
    for (NodeId u = 0; u < node_count(); ++u) {
        if (crashed(u)) continue;
        const auto* agent = agent_of(protocol(u));
        if (agent == nullptr) continue;
        if (agent->live_records() != 0) {
            for (const paris::CallRecord& r : agent->call_records()) {
                if (paris::call_state_terminal(r.state)) continue;
                fail("node " + std::to_string(u) + ": call " + call_str(r.id) +
                     " stuck in state " + paris::call_state_name(r.state) +
                     " at quiescence");
            }
            // retain_terminal == false keeps no resolved records around,
            // so a nonzero live count with an empty snapshot would hide;
            // report the count too when the snapshot came up clean.
            bool found = false;
            for (const paris::CallRecord& r : agent->call_records())
                if (!paris::call_state_terminal(r.state)) found = true;
            if (!found)
                fail("node " + std::to_string(u) + ": " +
                     std::to_string(agent->live_records()) +
                     " live record(s) unaccounted for at quiescence");
        }
    }
    return *this;
}

CallOracle& CallOracle::require_released() {
    for (NodeId u = 0; u < node_count(); ++u) {
        if (crashed(u)) continue;
        const auto* agent = agent_of(protocol(u));
        if (agent == nullptr) continue;
        for (const auto& [edge, held] : agent->reserved_entries()) {
            fail("node " + std::to_string(u) + ": edge " + std::to_string(edge) +
                 " still holds " + std::to_string(held) + " unit(s) at quiescence");
        }
    }
    return *this;
}

OracleReport check_calls(const node::Cluster& cluster) {
    CallOracle o(cluster);
    return o.require_conserved().require_terminal().require_released().report();
}

OracleReport check_calls(const node::ParallelCluster& cluster) {
    CallOracle o(cluster);
    return o.require_conserved().require_terminal().require_released().report();
}

}  // namespace fastnet::fault
