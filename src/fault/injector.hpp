// Deterministic fault injection — the chaos side of the robustness story.
//
// A FaultModel is a declarative description of an adversary: how often
// links flap, how often nodes hard-crash and recover, how lossy and
// duplicative the data-link layer is, and how badly NCUs may stall
// (inflated P). FaultInjector::compile turns a model plus a seed into a
// concrete timed Scenario for one graph — a pure function of
// (model, seed, graph), so the same triple always yields the same
// faults, on any thread, in any sweep slot. That is what lets chaos runs
// ride the exec engine at full parallelism and still byte-diff clean
// against the serial order (scripts/chaos_smoke.sh).
//
// Crash vs. link-down (docs/ROBUSTNESS.md): node crashes scripted here
// are *hard* — Cluster::crash_node wipes the NCU's soft state and
// restart brings up a fresh protocol instance under a new incarnation.
// Set FaultModel::crash_nodes = false for the weaker classic model where
// only the links drop and software state survives.
#pragma once

#include <cstdint>
#include <vector>

#include "node/scenario.hpp"

namespace fastnet::fault {

struct FaultModel {
    /// Random link fail/restore draws over the fault window.
    unsigned link_flaps = 0;
    /// Random node crash-or-restart draws over the fault window.
    unsigned node_crashes = 0;
    /// Random NCU stall events (extra processing delay drawn from
    /// [1, stall_max] ticks); models an overloaded NCU — inflated P.
    unsigned stalls = 0;
    Tick stall_max = 0;

    /// Fault window [from, to] (inclusive) in simulated ticks.
    Tick window_from = 0;
    Tick window_to = 0;
    /// When > 0, a heal_all at this tick: every link/node the script left
    /// down comes back, dangling stalls clear — the "after the last
    /// topological change" premise of Theorem 1.
    Tick heal_at = 0;

    /// Edges/nodes the adversary must not touch (e.g. bridges, the
    /// designated measurement node).
    std::vector<EdgeId> protect;
    std::vector<NodeId> protect_nodes;

    /// true → node events are hard crash/restart; false → link-layer
    /// fail/restore (software survives).
    bool crash_nodes = true;

    /// Link-layer corruption, in parts per million per transmission.
    /// NOTE: duplication is safe for sequence-numbered protocols
    /// (topology maintenance, the router) but NOT for token-based ones —
    /// a duplicated election token breaks its mutual-exclusion premise.
    std::uint32_t loss_ppm = 0;
    std::uint32_t dup_ppm = 0;

    /// When > 0, configure() attaches a fresh sim::Trace of this capacity
    /// to the cluster config (unless one is already set) — every injected
    /// fault and its consequences (drops, dups, crash/restart, timers)
    /// become diagnosable from the exported trace (src/obs/).
    std::size_t trace_capacity = 0;
};

/// Compiles fault models into runnable scripts.
class FaultInjector {
public:
    FaultInjector(FaultModel model, std::uint64_t seed)
        : model_(model), seed_(seed) {}

    const FaultModel& model() const { return model_; }
    std::uint64_t seed() const { return seed_; }

    /// The concrete fault script for `g` — pure in (model, seed, g).
    node::Scenario compile(const graph::Graph& g) const;

    /// Applies the packet-level faults (loss/dup) to a cluster config.
    /// Scenario actions cover everything else.
    void configure(node::ClusterConfig& config) const;

private:
    FaultModel model_;
    std::uint64_t seed_;
};

}  // namespace fastnet::fault
