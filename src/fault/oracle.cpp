#include "fault/oracle.hpp"

#include <string>

#include "election/election.hpp"
#include "node/parallel_cluster.hpp"
#include "topo/router.hpp"
#include "topo/topology_maintenance.hpp"

namespace fastnet::fault {
namespace {

/// The maintenance instance behind a node's protocol, however embedded.
const topo::TopologyMaintenance* maintenance_of(const node::Protocol& p) {
    if (const auto* tm = dynamic_cast<const topo::TopologyMaintenance*>(&p)) return tm;
    if (const auto* r = dynamic_cast<const topo::RouterProtocol*>(&p)) return &r->topology();
    return nullptr;
}

}  // namespace

std::string OracleReport::summary() const {
    if (violations.empty()) return "ok";
    std::string out;
    for (const std::string& v : violations) {
        if (!out.empty()) out += "; ";
        out += v;
    }
    return out;
}

bool Oracle::quiescent() const { return seq_ != nullptr ? seq_->quiescent() : par_->quiescent(); }

std::size_t Oracle::packets_in_flight() const {
    return seq_ != nullptr ? seq_->network().packets_in_flight() : par_->packets_in_flight();
}

hw::Network& Oracle::network() const {
    return seq_ != nullptr ? seq_->network() : par_->mirror(0);
}

NodeId Oracle::node_count() const {
    return seq_ != nullptr ? seq_->node_count() : par_->node_count();
}

bool Oracle::crashed(NodeId u) const {
    return seq_ != nullptr ? seq_->crashed(u) : par_->crashed(u);
}

const node::Protocol& Oracle::protocol(NodeId u) const {
    return seq_ != nullptr ? seq_->protocol(u) : par_->protocol(u);
}

Oracle& Oracle::require_quiescent() {
    if (!quiescent()) fail("cluster not quiescent");
    return *this;
}

Oracle& Oracle::require_no_inflight() {
    const std::size_t live = packets_in_flight();
    if (live != 0)
        fail(std::to_string(live) + " packet cursor(s) still allocated after quiescence");
    return *this;
}

Oracle& Oracle::require_views_converged() {
    for (NodeId u = 0; u < node_count(); ++u) {
        if (crashed(u)) continue;  // a down node has no view to check
        const topo::TopologyMaintenance* tm = maintenance_of(protocol(u));
        if (tm == nullptr) {
            fail("node " + std::to_string(u) + " runs no topology maintenance");
            continue;
        }
        if (!topo::view_converged(*tm, network(), u))
            fail("node " + std::to_string(u) + "'s view is not exact (Theorem 1)");
    }
    return *this;
}

Oracle& Oracle::require_at_most_one_leader() {
    unsigned leaders = 0;
    for (NodeId u = 0; u < node_count(); ++u) {
        if (crashed(u)) continue;
        const auto* e = dynamic_cast<const elect::ElectionProtocol*>(&protocol(u));
        if (e == nullptr) {
            fail("node " + std::to_string(u) + " runs no election protocol");
            continue;
        }
        if (e->role() == elect::Role::kLeader) ++leaders;
    }
    if (leaders > 1) fail(std::to_string(leaders) + " live leaders (election safety)");
    return *this;
}

Oracle& Oracle::require_received(NodeId at, NodeId src, std::uint64_t tag) {
    const auto* r = dynamic_cast<const topo::RouterProtocol*>(&protocol(at));
    if (r == nullptr) {
        fail("node " + std::to_string(at) + " runs no router");
        return *this;
    }
    for (const auto& [s, t] : r->received())
        if (s == src && t == tag) return *this;
    fail("node " + std::to_string(at) + " never received tag " + std::to_string(tag) +
         " from " + std::to_string(src));
    return *this;
}

OracleReport check_theorem1(node::Cluster& cluster) {
    Oracle o(cluster);
    o.require_quiescent().require_no_inflight().require_views_converged();
    return o.report();
}

OracleReport check_theorem1(node::ParallelCluster& cluster) {
    Oracle o(cluster);
    o.require_quiescent().require_no_inflight().require_views_converged();
    return o.report();
}

}  // namespace fastnet::fault
