// The convergence oracle: what must hold after the faults stop.
//
// Theorem 1 promises eventual consistency — after the last topological
// change, every node's view of its connected component becomes exact.
// The oracle turns that (and its companions for the router and the
// election) into assertions checkable on a quiesced Cluster:
//
//   * quiescence      — the simulation truly ran out of work;
//   * no in-flight    — every pooled packet cursor was released: nothing
//                       survived a link epoch bump (no resurrection);
//   * views exact     — every *live* node's topology view equals ground
//                       truth over its component (Theorem 1);
//   * <= 1 leader     — at most one live node holds Role::kLeader
//                       (election safety; crash churn may cost liveness,
//                       never safety);
//   * delivery        — scripted datagrams arrived despite the faults.
//
// Checks accumulate human-readable violations instead of throwing, so a
// chaos sweep can report every broken invariant of a seed at once.
#pragma once

#include <string>
#include <vector>

#include "node/cluster.hpp"

namespace fastnet::node {
class ParallelCluster;
}

namespace fastnet::fault {

struct OracleReport {
    std::vector<std::string> violations;
    bool ok() const { return violations.empty(); }
    /// All violations joined with "; " ("ok" when none).
    std::string summary() const;
};

class Oracle {
public:
    explicit Oracle(node::Cluster& cluster) : seq_(&cluster) {}
    /// Parallel-kernel overload: quiescence spans every shard, in-flight
    /// cursors are summed over the mirrors, and topology ground truth is
    /// read from mirror 0 (every mirror replays the same control
    /// timeline, so their link states are identical).
    explicit Oracle(node::ParallelCluster& cluster) : par_(&cluster) {}

    /// The cluster must have no pending events or queued NCU work.
    Oracle& require_quiescent();

    /// Every pooled packet must be back on the free list — a packet that
    /// outlived its link epoch would still hold a cursor.
    Oracle& require_no_inflight();

    /// Theorem 1: every live node's topology view is exact over its
    /// actual connected component. Works for clusters running
    /// TopologyMaintenance directly or embedded in RouterProtocol.
    Oracle& require_views_converged();

    /// Election safety: at most one live node believes it is the leader.
    Oracle& require_at_most_one_leader();

    /// Router delivery: node `at` received (src, tag).
    Oracle& require_received(NodeId at, NodeId src, std::uint64_t tag);

    const OracleReport& report() const { return report_; }
    bool ok() const { return report_.ok(); }

private:
    void fail(std::string msg) { report_.violations.push_back(std::move(msg)); }

    // One mode only; the accessors below fan out to whichever is set.
    bool quiescent() const;
    std::size_t packets_in_flight() const;
    hw::Network& network() const;
    NodeId node_count() const;
    bool crashed(NodeId u) const;
    const node::Protocol& protocol(NodeId u) const;

    node::Cluster* seq_ = nullptr;
    node::ParallelCluster* par_ = nullptr;
    OracleReport report_;
};

/// The standard Theorem-1 bundle: quiescent, no in-flight packets, every
/// live view exact.
OracleReport check_theorem1(node::Cluster& cluster);
OracleReport check_theorem1(node::ParallelCluster& cluster);

}  // namespace fastnet::fault
