// Result aggregation + canonical JSON for sweeps.
//
// Benches and stress tests share one vocabulary for summarizing a sweep:
// per-value aggregates (min / mean / median / max) and a *canonical*
// JSON serialization whose bytes depend only on the result values — the
// determinism tests and scripts/sweep_smoke.sh literally diff the files
// produced at different thread counts. Doubles are printed with
// std::to_chars (shortest round-trip form), so equal values always print
// to equal bytes.
#pragma once

#include <string>
#include <vector>

#include "exec/sweep_runner.hpp"

namespace fastnet::exec {

/// Order statistics over one named value across a sweep's rows.
struct Aggregate {
    std::size_t count = 0;
    double min = 0;
    double max = 0;
    double mean = 0;
    double median = 0;  ///< Midpoint average for even counts.
};

/// Computes the aggregate of `values` (copies + sorts internally).
Aggregate aggregate(std::vector<double> values);

/// Canonical shortest-round-trip formatting: "7" prints as "7", not
/// "7.000000"; bit-equal doubles always yield byte-equal strings.
std::string format_double(double v);

/// Serializes a sweep: the rows in task order with their counters and
/// probe values, then aggregates of every value key (first-appearance
/// order) plus the built-in counters. Deliberately excludes anything
/// scheduling-dependent (thread count, wall time, hostnames): two runs of
/// the same sweep must produce byte-identical output at any parallelism.
std::string sweep_json(const std::string& sweep_name, std::uint64_t master_seed,
                       const std::vector<CaseResult>& rows);

/// Writes `contents` to `path`; returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& contents);

}  // namespace fastnet::exec
