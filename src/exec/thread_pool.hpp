// Work-stealing thread pool for the parallel experiment engine.
//
// The simulator itself stays single-threaded and deterministic; what we
// parallelize is *across* independent simulations (sweeps over the
// paper's (C, P) grid, topology families, seeds — see exec/sweep_runner).
// Each worker owns a deque: submissions are distributed round-robin,
// a worker pops its own queue from the front and steals from the back
// of a victim's queue when it runs dry. All coordination uses plain
// mutexes and condition variables so the pool is trivially clean under
// ThreadSanitizer (the `tsan` CMake preset builds the whole suite with
// it; see scripts/check.sh).
//
// Determinism note: the pool makes NO ordering promises — tasks may run
// in any order on any worker. Determinism of sweep results is the
// responsibility of the layer above (exec::sweep_map): tasks must be
// independent and write only to their own slot, with per-task RNG
// streams derived from the task *index*, never from the worker.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fastnet::exec {

class ThreadPool {
public:
    /// Spawns `threads` workers; 0 means hardware_threads().
    explicit ThreadPool(unsigned threads = 0);

    /// Joins after draining every queued task.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues one task. Tasks must not throw (wrap and capture errors
    /// at the call site — exec::sweep_map does); they may submit further
    /// tasks. Safe to call from any thread, including workers.
    void submit(std::function<void()> task);

    /// Blocks until every submitted task (including tasks submitted by
    /// running tasks) has finished. The pool is reusable afterwards.
    void wait_idle();

    unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

    /// std::thread::hardware_concurrency with a floor of 1.
    static unsigned hardware_threads();

private:
    /// One worker's deque. Own pops come off the front (LIFO relative to
    /// round-robin placement keeps caches warm); thieves take the back.
    struct Queue {
        std::mutex mu;
        std::deque<std::function<void()>> tasks;
    };

    void worker_loop(unsigned self);
    std::function<void()> try_take(unsigned self);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    // Coordination state, all guarded by mu_.
    std::mutex mu_;
    std::condition_variable wake_cv_;   ///< Signals "task available" / stop.
    std::condition_variable idle_cv_;   ///< Signals in_flight_ hitting 0.
    std::uint64_t unclaimed_ = 0;       ///< Queued, not yet picked up.
    std::uint64_t in_flight_ = 0;       ///< Queued or currently running.
    std::uint64_t next_queue_ = 0;      ///< Round-robin submission cursor.
    bool stop_ = false;
};

}  // namespace fastnet::exec
