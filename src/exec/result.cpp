#include "exec/result.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>

#include "common/expect.hpp"

namespace fastnet::exec {

Aggregate aggregate(std::vector<double> values) {
    Aggregate a;
    a.count = values.size();
    if (values.empty()) return a;
    std::sort(values.begin(), values.end());
    a.min = values.front();
    a.max = values.back();
    double sum = 0;
    for (double v : values) sum += v;
    a.mean = sum / static_cast<double>(values.size());
    const std::size_t mid = values.size() / 2;
    a.median = values.size() % 2 == 1 ? values[mid] : (values[mid - 1] + values[mid]) / 2.0;
    return a;
}

std::string format_double(double v) {
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    FASTNET_ENSURES(res.ec == std::errc());
    return std::string(buf, res.ptr);
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
}

void append_aggregate(std::string& out, const std::string& key, const Aggregate& a,
                      bool last) {
    out += "    {\"name\": \"";
    append_escaped(out, key);
    out += "\", \"count\": " + std::to_string(a.count);
    out += ", \"min\": " + format_double(a.min);
    out += ", \"mean\": " + format_double(a.mean);
    out += ", \"median\": " + format_double(a.median);
    out += ", \"max\": " + format_double(a.max);
    out += last ? "}\n" : "},\n";
}

}  // namespace

std::string sweep_json(const std::string& sweep_name, std::uint64_t master_seed,
                       const std::vector<CaseResult>& rows) {
    std::string out;
    out += "{\n  \"sweep\": \"";
    append_escaped(out, sweep_name);
    out += "\",\n  \"master_seed\": " + std::to_string(master_seed);
    out += ",\n  \"tasks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const CaseResult& r = rows[i];
        out += "    {\"index\": " + std::to_string(r.index) + ", \"name\": \"";
        append_escaped(out, r.name);
        out += "\", \"ok\": ";
        out += r.ok ? "true" : "false";
        out += ", \"completion\": " + std::to_string(r.completion);
        out += ", \"system_calls\": " + std::to_string(r.system_calls);
        out += ", \"direct_messages\": " + std::to_string(r.direct_messages);
        out += ", \"hops\": " + std::to_string(r.hops);
        for (const auto& [key, value] : r.values) {
            out += ", \"";
            append_escaped(out, key);
            out += "\": " + format_double(value);
        }
        out += i + 1 < rows.size() ? "},\n" : "}\n";
    }
    out += "  ],\n  \"aggregates\": [\n";

    // Built-in counters first, then every probe key in first-appearance
    // order (a stable, content-derived order — never a hash order).
    std::vector<double> completion, calls, direct, hops;
    for (const CaseResult& r : rows) {
        completion.push_back(static_cast<double>(r.completion));
        calls.push_back(static_cast<double>(r.system_calls));
        direct.push_back(static_cast<double>(r.direct_messages));
        hops.push_back(static_cast<double>(r.hops));
    }
    std::vector<std::string> keys;
    for (const CaseResult& r : rows)
        for (const auto& [key, value] : r.values)
            if (std::find(keys.begin(), keys.end(), key) == keys.end()) keys.push_back(key);

    append_aggregate(out, "completion", aggregate(std::move(completion)), false);
    append_aggregate(out, "system_calls", aggregate(std::move(calls)), false);
    append_aggregate(out, "direct_messages", aggregate(std::move(direct)), false);
    append_aggregate(out, "hops", aggregate(std::move(hops)), keys.empty());
    for (std::size_t k = 0; k < keys.size(); ++k) {
        std::vector<double> vals;
        for (const CaseResult& r : rows)
            for (const auto& [key, value] : r.values)
                if (key == keys[k]) vals.push_back(value);
        append_aggregate(out, keys[k], aggregate(std::move(vals)), k + 1 == keys.size());
    }
    out += "  ]\n}\n";
    return out;
}

bool write_text_file(const std::string& path, const std::string& contents) {
    std::ofstream f(path, std::ios::binary);
    if (!f) return false;
    f << contents;
    return static_cast<bool>(f);
}

}  // namespace fastnet::exec
