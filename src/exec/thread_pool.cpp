#include "exec/thread_pool.hpp"

#include "common/expect.hpp"

namespace fastnet::exec {

unsigned ThreadPool::hardware_threads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1u : hc;
}

ThreadPool::ThreadPool(unsigned threads) {
    const unsigned n = threads == 0 ? hardware_threads() : threads;
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    FASTNET_EXPECTS(task != nullptr);
    std::uint64_t slot;
    {
        std::lock_guard<std::mutex> lk(mu_);
        FASTNET_EXPECTS_MSG(!stop_, "submit() on a stopping ThreadPool");
        slot = next_queue_++ % queues_.size();
        ++unclaimed_;
        ++in_flight_;
    }
    {
        Queue& q = *queues_[slot];
        std::lock_guard<std::mutex> lk(q.mu);
        q.tasks.push_back(std::move(task));
    }
    wake_cv_.notify_one();
}

std::function<void()> ThreadPool::try_take(unsigned self) {
    // Own queue first, front (most recently placed there by round-robin
    // still close in submission order); then sweep the other queues as a
    // thief, taking from the back.
    {
        Queue& q = *queues_[self];
        std::lock_guard<std::mutex> lk(q.mu);
        if (!q.tasks.empty()) {
            auto t = std::move(q.tasks.front());
            q.tasks.pop_front();
            return t;
        }
    }
    const unsigned n = static_cast<unsigned>(queues_.size());
    for (unsigned d = 1; d < n; ++d) {
        Queue& q = *queues_[(self + d) % n];
        std::lock_guard<std::mutex> lk(q.mu);
        if (!q.tasks.empty()) {
            auto t = std::move(q.tasks.back());
            q.tasks.pop_back();
            return t;
        }
    }
    return nullptr;
}

void ThreadPool::worker_loop(unsigned self) {
    for (;;) {
        std::function<void()> task = try_take(self);
        if (task == nullptr) {
            std::unique_lock<std::mutex> lk(mu_);
            wake_cv_.wait(lk, [this] { return stop_ || unclaimed_ > 0; });
            // Drain everything before honoring stop so the destructor
            // never abandons queued work.
            if (stop_ && unclaimed_ == 0) return;
            continue;
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            --unclaimed_;
        }
        task();
        {
            std::lock_guard<std::mutex> lk(mu_);
            --in_flight_;
            if (in_flight_ == 0) idle_cv_.notify_all();
        }
    }
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return in_flight_ == 0; });
}

}  // namespace fastnet::exec
