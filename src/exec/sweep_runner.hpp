// Deterministic multi-core sweep execution.
//
// The repo's experiments are grids of *independent* simulations:
// (topology, ClusterConfig, Scenario, seed) points whose per-run cost PR 1
// drove down 4-86x, leaving across-run throughput as the bottleneck. This
// layer fans such grids out over exec::ThreadPool while keeping results
// bit-identical to the serial order:
//
//   * results land in a pre-sized vector slot per task — collection order
//     is submission order, never completion order;
//   * each task's RNG stream is Rng::stream(master_seed, task_index) — a
//     pure function of the task's position in the grid, so neither the
//     worker that ran it nor the interleaving can change what it draws;
//   * tasks share nothing mutable: every task builds its own Cluster
//     (simulator, network, metrics, runtimes) from value-copied inputs.
//
// The contract is enforced by tests/test_exec.cpp (the same sweep at 1, 2
// and hardware_concurrency threads must serialize to byte-identical JSON)
// and by the SweepSmoke ctest (scripts/sweep_smoke.sh).
#pragma once

#include <exception>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "exec/thread_pool.hpp"
#include "node/cluster.hpp"
#include "node/scenario.hpp"

namespace fastnet::exec {

struct SweepOptions {
    /// Worker threads; 0 means ThreadPool::hardware_threads(). 1 runs the
    /// plain serial loop (no pool) — the baseline the parallel path must
    /// reproduce byte-for-byte.
    unsigned threads = 0;
    /// Master seed; per-task streams are forked by task index.
    std::uint64_t master_seed = 42;
};

/// Handed to each task: its submission index and its private RNG stream.
struct TaskContext {
    std::size_t index = 0;
    Rng rng;
};

/// Maps `fn(item, ctx)` over `items` on `opt.threads` workers; returns
/// results in item order regardless of scheduling. The result type must be
/// default-constructible. The first task exception (in item order, not
/// completion order) is rethrown after the whole batch drains.
template <typename T, typename F>
auto sweep_map(const std::vector<T>& items, F fn, const SweepOptions& opt = {})
    -> std::vector<std::decay_t<std::invoke_result_t<F&, const T&, TaskContext&>>> {
    using R = std::decay_t<std::invoke_result_t<F&, const T&, TaskContext&>>;
    std::vector<R> results(items.size());
    std::vector<std::exception_ptr> errors(items.size());
    auto run_one = [&](std::size_t i) {
        TaskContext ctx{i, Rng::stream(opt.master_seed, i)};
        try {
            results[i] = fn(items[i], ctx);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };
    const unsigned threads = opt.threads == 0 ? ThreadPool::hardware_threads() : opt.threads;
    if (threads <= 1 || items.size() <= 1) {
        for (std::size_t i = 0; i < items.size(); ++i) run_one(i);
    } else {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < items.size(); ++i)
            pool.submit([&run_one, i] { run_one(i); });
        pool.wait_idle();
    }
    for (auto& e : errors)
        if (e) std::rethrow_exception(e);
    return results;
}

/// One task's outcome: the headline cost-measure counters plus free-form
/// named values extracted by the case's probe. Everything that lands in
/// the JSON serialization is integer-or-exactly-computed, so equal runs
/// serialize to equal bytes.
struct CaseResult {
    std::string name;
    std::size_t index = 0;
    Tick completion = 0;
    std::uint64_t system_calls = 0;
    std::uint64_t direct_messages = 0;
    std::uint64_t hops = 0;
    bool ok = true;  ///< Probe verdict (e.g. "converged", "unique leader").
    std::vector<std::pair<std::string, double>> values;

    void set(std::string key, double v) { values.emplace_back(std::move(key), v); }
};

/// One grid point: everything a worker needs to build, perturb and run a
/// Cluster, all owned by value (tasks must share nothing mutable).
struct ClusterCase {
    std::string name;
    graph::Graph graph;
    node::ProtocolFactory protocol;
    node::ClusterConfig config;
    node::Scenario scenario;     ///< Applied before running (may be empty).
    bool start_all = true;       ///< start_all(start_at) before running.
    Tick start_at = 0;
    /// When true (default) the cluster seed is drawn from the task's RNG
    /// stream — sweep results then depend only on (master_seed, index).
    /// Set false to pin config.seed for a specific case.
    bool derive_seed = true;
    /// When > 0 and config.trace is null, the worker attaches a fresh
    /// sim::Trace of this capacity to the case's cluster before running —
    /// each case records into its *own* trace, so exported traces stay
    /// byte-identical at any thread count. Read it back in the probe via
    /// Cluster::trace().
    std::size_t trace_capacity = 0;
    /// When set and config.monitors is null, the worker builds a fresh
    /// obs::MonitorHub per case, lets this callback register monitors on
    /// it, and attaches it to the cluster. Violations then fold into the
    /// result row: `monitor_violations` joins the values and a violating
    /// run clears `ok`. Per-case hubs keep parallel sweeps deterministic
    /// (monitor state is never shared across workers).
    std::function<void(obs::MonitorHub&)> monitor_setup;
    /// Runs on the worker after the cluster quiesces; extracts whatever
    /// the experiment measures into the result row.
    std::function<void(node::Cluster&, CaseResult&)> probe;
};

/// Fans ClusterCases out across workers; results in submission order.
class SweepRunner {
public:
    explicit SweepRunner(SweepOptions opt = {}) : opt_(opt) {}

    /// Adds one case; returns its task index.
    std::size_t add(ClusterCase c);

    /// Runs every case; deterministic in content and order.
    std::vector<CaseResult> run();

    const SweepOptions& options() const { return opt_; }
    std::size_t size() const { return cases_.size(); }

private:
    SweepOptions opt_;
    std::vector<ClusterCase> cases_;
};

}  // namespace fastnet::exec
