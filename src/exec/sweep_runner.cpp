#include "exec/sweep_runner.hpp"

namespace fastnet::exec {

std::size_t SweepRunner::add(ClusterCase c) {
    FASTNET_EXPECTS(c.protocol != nullptr);
    cases_.push_back(std::move(c));
    return cases_.size() - 1;
}

std::vector<CaseResult> SweepRunner::run() {
    return sweep_map(
        cases_,
        [](const ClusterCase& c, TaskContext& ctx) {
            node::ClusterConfig cfg = c.config;
            if (c.derive_seed) cfg.seed = ctx.rng.next();
            if (c.trace_capacity > 0 && !cfg.trace)
                cfg.trace = std::make_shared<sim::Trace>(c.trace_capacity);
            if (c.monitor_setup && !cfg.monitors) {
                cfg.monitors = std::make_shared<obs::MonitorHub>();
                c.monitor_setup(*cfg.monitors);
            }
            node::Cluster cluster(c.graph, c.protocol, cfg);
            c.scenario.apply(cluster);
            if (c.start_all) cluster.start_all(c.start_at);
            const Tick done = cluster.run();

            CaseResult r;
            r.name = c.name;
            r.index = ctx.index;
            r.completion = done;
            r.system_calls = cluster.metrics().total_message_system_calls();
            r.direct_messages = cluster.metrics().total_direct_messages();
            r.hops = cluster.metrics().net().hops;
            if (const auto& hub = cluster.monitors(); hub && hub->active()) {
                r.set("monitor_violations", static_cast<double>(hub->violation_count()));
                r.ok = r.ok && hub->ok();
            }
            if (c.probe) c.probe(cluster, r);
            return r;
        },
        opt_);
}

}  // namespace fastnet::exec
