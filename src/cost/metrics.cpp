#include "cost/metrics.hpp"

#include <ostream>

namespace fastnet::cost {

std::uint64_t Metrics::total_message_system_calls() const {
    std::uint64_t total = 0;
    for (const NodeCounters& c : nodes_) total += c.message_deliveries;
    return total;
}

std::uint64_t Metrics::total_invocations() const {
    std::uint64_t total = 0;
    for (const NodeCounters& c : nodes_) total += c.invocations();
    return total;
}

Sampling::Sampling(NodeId node_count, Tick window) : window_(window) {
    FASTNET_EXPECTS(window >= 1);
    nodes_.reserve(node_count);
    for (NodeId u = 0; u < node_count; ++u)
        nodes_.push_back(NodeSeries{TimeSeries(window), TimeSeries(window), TimeSeries(window),
                                    TimeSeries(window)});
    hops_ = TimeSeries(window);
    sends_ = TimeSeries(window);
    drops_ = TimeSeries(window);
}

void Sampling::phase_call(std::uint64_t phase) {
    for (auto& [p, n] : phase_calls_) {
        if (p == phase) {
            ++n;
            return;
        }
    }
    phase_calls_.emplace_back(phase, 1);
}

void Metrics::reset() {
    for (NodeCounters& c : nodes_) c = NodeCounters{};
    net_ = NetCounters{};
    phase_ = 0;
    if (sampling_ != nullptr) {
        const Tick w = sampling_->window();
        sampling_ = std::make_unique<Sampling>(static_cast<NodeId>(nodes_.size()), w);
    }
}

void Metrics::enable_sampling(Tick window) {
    sampling_ = std::make_unique<Sampling>(static_cast<NodeId>(nodes_.size()), window);
}

CostReport snapshot(const Metrics& m, Tick completion_time) {
    CostReport r;
    r.system_calls = m.total_message_system_calls();
    r.invocations = m.total_invocations();
    r.direct_messages = m.total_direct_messages();
    r.hops = m.net().hops;
    r.max_header_len = m.net().max_header_len;
    r.completion_time = completion_time;
    return r;
}

std::ostream& operator<<(std::ostream& os, const CostReport& r) {
    return os << "{system_calls=" << r.system_calls << ", invocations=" << r.invocations
              << ", direct_messages=" << r.direct_messages << ", hops=" << r.hops
              << ", max_header_len=" << r.max_header_len << ", time=" << r.completion_time
              << "}";
}

}  // namespace fastnet::cost
