#include "cost/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace fastnet::cost {

std::uint64_t Metrics::total_message_system_calls() const {
    std::uint64_t total = 0;
    for (const NodeCounters& c : nodes_) total += c.message_deliveries;
    return total;
}

std::uint64_t Metrics::total_invocations() const {
    std::uint64_t total = 0;
    for (const NodeCounters& c : nodes_) total += c.invocations();
    return total;
}

Sampling::Sampling(NodeId node_count, Tick window) : window_(window) {
    FASTNET_EXPECTS(window >= 1);
    nodes_.reserve(node_count);
    for (NodeId u = 0; u < node_count; ++u)
        nodes_.push_back(NodeSeries{TimeSeries(window), TimeSeries(window), TimeSeries(window),
                                    TimeSeries(window)});
    hops_ = TimeSeries(window);
    sends_ = TimeSeries(window);
    drops_ = TimeSeries(window);
    bytes_per_node_ = TimeSeries(window);
}

void Sampling::phase_call(std::uint64_t phase) {
    for (auto& [p, n] : phase_calls_) {
        if (p == phase) {
            ++n;
            return;
        }
    }
    phase_calls_.emplace_back(phase, 1);
}

void Sampling::merge_from(const Sampling& o) {
    FASTNET_EXPECTS(o.window_ == window_);
    FASTNET_EXPECTS(o.nodes_.size() == nodes_.size());
    for (std::size_t u = 0; u < nodes_.size(); ++u) {
        nodes_[u].busy.merge_from(o.nodes_[u].busy);
        nodes_[u].hw_time.merge_from(o.nodes_[u].hw_time);
        nodes_[u].deliveries.merge_from(o.nodes_[u].deliveries);
        nodes_[u].queue_depth.merge_from(o.nodes_[u].queue_depth);
    }
    hops_.merge_from(o.hops_);
    sends_.merge_from(o.sends_);
    drops_.merge_from(o.drops_);
    bytes_per_node_.merge_from(o.bytes_per_node_);
    hop_latency_.merge_from(o.hop_latency_);
    delivery_latency_.merge_from(o.delivery_latency_);
    header_len_.merge_from(o.header_len_);
    ncu_busy_.merge_from(o.ncu_busy_);
    queue_depth_.merge_from(o.queue_depth_);
    for (const auto& [p, n] : o.phase_calls_) {
        bool found = false;
        for (auto& [mine, count] : phase_calls_) {
            if (mine == p) {
                count += n;
                found = true;
                break;
            }
        }
        if (!found) phase_calls_.emplace_back(p, n);
    }
    // First-use order is per-shard state; phase ids are global. Sort so
    // the merged serialization is a function of the run, not the split.
    std::sort(phase_calls_.begin(), phase_calls_.end());
}

const char* path_segment_kind_name(PathSegmentKind k) {
    switch (k) {
        case PathSegmentKind::kQueueing: return "queueing";
        case PathSegmentKind::kTransit: return "transit";
        case PathSegmentKind::kHandler: return "handler";
        case PathSegmentKind::kTimerWait: return "timer_wait";
        case PathSegmentKind::kRetryBackoff: return "retry_backoff";
    }
    return "?";
}

const char* handler_kind_name(HandlerKind k) {
    switch (k) {
        case HandlerKind::kStart: return "start";
        case HandlerKind::kRestart: return "restart";
        case HandlerKind::kDelivery: return "delivery";
        case HandlerKind::kLink: return "link";
        case HandlerKind::kTimer: return "timer";
    }
    return "?";
}

std::uint16_t Profiler::register_protocol(std::string_view name) {
    for (std::size_t i = 0; i < entries_.size(); ++i)
        if (entries_[i].name == name) return static_cast<std::uint16_t>(i);
    FASTNET_EXPECTS(entries_.size() < kNoProtocol);
    entries_.push_back(Entry{std::string(name), {}});
    return static_cast<std::uint16_t>(entries_.size() - 1);
}

bool Profiler::any() const {
    for (const Entry& e : entries_)
        if (e.invocations() != 0) return true;
    return false;
}

std::vector<std::size_t> Profiler::sorted() const {
    std::vector<std::size_t> order(entries_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](std::size_t x, std::size_t y) {
        return entries_[x].name < entries_[y].name;
    });
    return order;
}

void Profiler::merge_from(const Profiler& o) {
    for (const Entry& from : o.entries_) {
        const std::uint16_t id = register_protocol(from.name);
        Entry& into = entries_[id];
        for (unsigned k = 0; k < kHandlerKindCount; ++k)
            into.by_kind[k].merge_from(from.by_kind[k]);
    }
}

void Profiler::reset() {
    for (Entry& e : entries_) e.by_kind = {};
}

void TraceStats::merge_from(const TraceStats& o) {
    total_recorded += o.total_recorded;
    dropped += o.dropped;
    detail_dropped += o.detail_dropped;
    spilled_records += o.spilled_records;
    spill_segments += o.spill_segments;
    spilled_bytes += o.spilled_bytes;
    resident_bytes += o.resident_bytes;
}

void CallStats::merge_from(const CallStats& o) {
    offered += o.offered;
    shed += o.shed;
    placed += o.placed;
    accepted += o.accepted;
    blocked += o.blocked;
    completed += o.completed;
    failed += o.failed;
    timeouts += o.timeouts;
    retries += o.retries;
    reaped += o.reaped;
    setup_latency.merge_from(o.setup_latency);
    retries_per_call.merge_from(o.retries_per_call);
}

void Metrics::merge_from(const Metrics& o) {
    FASTNET_EXPECTS(o.nodes_.size() == nodes_.size());
    for (std::size_t u = 0; u < nodes_.size(); ++u) {
        NodeCounters& into = nodes_[u];
        const NodeCounters& from = o.nodes_[u];
        into.message_deliveries += from.message_deliveries;
        into.starts += from.starts;
        into.timer_fires += from.timer_fires;
        into.link_events += from.link_events;
        into.sends += from.sends;
        into.crashes += from.crashes;
        into.restarts += from.restarts;
        into.busy_time += from.busy_time;
    }
    net_.injections += o.net_.injections;
    net_.hops += o.net_.hops;
    net_.ncu_deliveries += o.net_.ncu_deliveries;
    net_.drops_inactive_link += o.net_.drops_inactive_link;
    net_.drops_no_match += o.net_.drops_no_match;
    net_.drops_empty_header += o.net_.drops_empty_header;
    net_.max_header_len = std::max(net_.max_header_len, o.net_.max_header_len);
    net_.header_bits += o.net_.header_bits;
    net_.drops_injected += o.net_.drops_injected;
    net_.dup_copies += o.net_.dup_copies;
    calls_.merge_from(o.calls_);
    profiler_.merge_from(o.profiler_);
    trace_stats_.merge_from(o.trace_stats_);
    if (sampling_ != nullptr && o.sampling_ != nullptr) sampling_->merge_from(*o.sampling_);
}

void Metrics::record_memory(const MemorySample& s) {
    memory_latest_ = s;
    ++memory_samples_;
    peak_node_bytes_ = std::max(peak_node_bytes_, s.max_node_bytes);
    if (sampling_ != nullptr && !nodes_.empty()) {
        const double mean =
            static_cast<double>(s.breakdown.total()) / static_cast<double>(nodes_.size());
        sampling_->bytes_per_node().add(s.at, mean);
    }
}

void Metrics::reset() {
    for (NodeCounters& c : nodes_) c = NodeCounters{};
    net_ = NetCounters{};
    calls_ = CallStats{};
    profiler_.reset();  // keeps registrations; clears the histograms
    trace_stats_ = TraceStats{};
    phase_ = 0;
    memory_latest_ = MemorySample{};
    memory_samples_ = 0;
    peak_node_bytes_ = 0;
    if (sampling_ != nullptr) {
        const Tick w = sampling_->window();
        sampling_ = std::make_unique<Sampling>(static_cast<NodeId>(nodes_.size()), w);
    }
}

void Metrics::enable_sampling(Tick window) {
    sampling_ = std::make_unique<Sampling>(static_cast<NodeId>(nodes_.size()), window);
}

CostReport snapshot(const Metrics& m, Tick completion_time) {
    CostReport r;
    r.system_calls = m.total_message_system_calls();
    r.invocations = m.total_invocations();
    r.direct_messages = m.total_direct_messages();
    r.hops = m.net().hops;
    r.max_header_len = m.net().max_header_len;
    r.completion_time = completion_time;
    return r;
}

std::ostream& operator<<(std::ostream& os, const CostReport& r) {
    return os << "{system_calls=" << r.system_calls << ", invocations=" << r.invocations
              << ", direct_messages=" << r.direct_messages << ", hops=" << r.hops
              << ", max_header_len=" << r.max_header_len << ", time=" << r.completion_time
              << "}";
}

}  // namespace fastnet::cost
