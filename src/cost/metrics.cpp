#include "cost/metrics.hpp"

#include <ostream>

namespace fastnet::cost {

std::uint64_t Metrics::total_message_system_calls() const {
    std::uint64_t total = 0;
    for (const NodeCounters& c : nodes_) total += c.message_deliveries;
    return total;
}

std::uint64_t Metrics::total_invocations() const {
    std::uint64_t total = 0;
    for (const NodeCounters& c : nodes_) total += c.invocations();
    return total;
}

void Metrics::reset() {
    for (NodeCounters& c : nodes_) c = NodeCounters{};
    net_ = NetCounters{};
}

CostReport snapshot(const Metrics& m, Tick completion_time) {
    CostReport r;
    r.system_calls = m.total_message_system_calls();
    r.invocations = m.total_invocations();
    r.direct_messages = m.total_direct_messages();
    r.hops = m.net().hops;
    r.max_header_len = m.net().max_header_len;
    r.completion_time = completion_time;
    return r;
}

std::ostream& operator<<(std::ostream& os, const CostReport& r) {
    return os << "{system_calls=" << r.system_calls << ", invocations=" << r.invocations
              << ", direct_messages=" << r.direct_messages << ", hops=" << r.hops
              << ", max_header_len=" << r.max_header_len << ", time=" << r.completion_time
              << "}";
}

}  // namespace fastnet::cost
