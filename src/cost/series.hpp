// Windowed time-series and log-scale histograms for the cost ledger.
//
// The paper's totals (cost::Metrics) say *how much* a run cost; these
// samplers say *when* and *how it was distributed* — per-node load over
// time is the quantity the node-capacitated-clique line plots, and the
// (C, P) split of Section 5 is only visible if hardware and software
// time are attributed separately as the run progresses. Everything here
// is exact integer/tick arithmetic accumulated deterministically, so
// sampled runs stay byte-diffable across thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace fastnet::cost {

/// Fixed-window accumulator: values are bucketed by sample time into
/// consecutive windows of `window` ticks each ([0,W), [W,2W), ...).
/// Windows are stored densely from window 0; runs are finite, and a
/// hard cap bounds pathological clocks (overflow lands in the last
/// window and is counted).
class TimeSeries {
public:
    struct Window {
        double sum = 0;
        double max = 0;
        std::uint64_t count = 0;
    };

    explicit TimeSeries(Tick window = 1, std::size_t max_windows = 1 << 20)
        : window_(window), max_windows_(max_windows) {
        FASTNET_EXPECTS(window >= 1);
        FASTNET_EXPECTS(max_windows >= 1);
    }

    void add(Tick at, double value) {
        std::size_t idx = static_cast<std::size_t>(at < 0 ? 0 : at / window_);
        if (idx >= max_windows_) {
            idx = max_windows_ - 1;
            ++overflow_;
        }
        if (idx >= windows_.size()) windows_.resize(idx + 1);
        Window& w = windows_[idx];
        w.sum += value;
        if (w.count == 0 || value > w.max) w.max = value;
        w.count += 1;
    }

    /// Window-wise accumulation of another series with the same width —
    /// the parallel kernel's per-shard → merged reduction. All sampled
    /// values in this repo are integral-valued doubles well below 2^53,
    /// so the sums are exact and the merge is order-independent.
    void merge_from(const TimeSeries& o) {
        FASTNET_EXPECTS(o.window_ == window_);
        if (o.windows_.size() > windows_.size()) windows_.resize(o.windows_.size());
        for (std::size_t i = 0; i < o.windows_.size(); ++i) {
            const Window& from = o.windows_[i];
            if (from.count == 0) continue;
            Window& into = windows_[i];
            if (into.count == 0 || from.max > into.max) into.max = from.max;
            into.sum += from.sum;
            into.count += from.count;
        }
        overflow_ += o.overflow_;
    }

    Tick window() const { return window_; }
    const std::vector<Window>& windows() const { return windows_; }
    std::uint64_t overflow() const { return overflow_; }

    std::uint64_t total_count() const {
        std::uint64_t n = 0;
        for (const Window& w : windows_) n += w.count;
        return n;
    }
    double total_sum() const {
        double s = 0;
        for (const Window& w : windows_) s += w.sum;
        return s;
    }

private:
    Tick window_;
    std::size_t max_windows_;
    std::uint64_t overflow_ = 0;
    std::vector<Window> windows_;
};

/// Power-of-two bucketed histogram for long-tailed integer quantities
/// (queue depths, latencies, header lengths). Bucket 0 holds value 0;
/// bucket k >= 1 holds values in [2^(k-1), 2^k).
class LogHistogram {
public:
    static constexpr unsigned kBuckets = 64;

    void add(std::uint64_t value) {
        buckets_[bucket_of(value)] += 1;
        sum_ += value;
        if (count_ == 0 || value > max_) max_ = value;
        if (count_ == 0 || value < min_) min_ = value;
        count_ += 1;
    }

    static unsigned bucket_of(std::uint64_t value) {
        if (value == 0) return 0;
        const unsigned b = floor_log2(value) + 1;
        return b < kBuckets ? b : kBuckets - 1;
    }

    /// Smallest value belonging to bucket `b` (0, 1, 2, 4, 8, ...).
    static std::uint64_t bucket_floor(unsigned b) {
        return b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
    }

    /// Bucket-wise accumulation of another histogram (exact and
    /// order-independent: everything is integer arithmetic).
    void merge_from(const LogHistogram& o) {
        if (o.count_ == 0) return;
        for (unsigned b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
        if (count_ == 0 || o.max_ > max_) max_ = o.max_;
        if (count_ == 0 || o.min_ < min_) min_ = o.min_;
        count_ += o.count_;
        sum_ += o.sum_;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }
    std::uint64_t bucket(unsigned b) const { return buckets_[b]; }
    unsigned highest_bucket() const {
        for (unsigned b = kBuckets; b-- > 0;)
            if (buckets_[b] != 0) return b;
        return 0;
    }

    /// Upper bound of the first bucket whose cumulative count reaches
    /// `q` (0 < q <= 1) of the total — an order-of-magnitude quantile.
    std::uint64_t quantile_bound(double q) const {
        if (count_ == 0) return 0;
        const double target = q * static_cast<double>(count_);
        std::uint64_t seen = 0;
        for (unsigned b = 0; b < kBuckets; ++b) {
            seen += buckets_[b];
            if (static_cast<double>(seen) >= target)
                return b == 0 ? 0 : bucket_floor(b + 1) - 1;
        }
        return max_;
    }

private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

}  // namespace fastnet::cost
