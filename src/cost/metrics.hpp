// The paper's cost measures, counted exactly.
//
// Two resource costs (Section 2):
//   * communication complexity — hops traversed by messages (hardware);
//   * system-call complexity  — number of NCU involvements (software).
// Time is tracked by the simulator clock; completion times are recorded
// by the harnesses. Counters are split finely so benches can report both
// the paper's headline quantities and diagnostic detail.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "cost/series.hpp"

namespace fastnet::cost {

/// Per-node NCU accounting.
struct NodeCounters {
    std::uint64_t message_deliveries = 0;  ///< Packets handed to this NCU.
    std::uint64_t starts = 0;              ///< Spontaneous protocol starts.
    std::uint64_t timer_fires = 0;
    std::uint64_t link_events = 0;         ///< Data-link state notifications.
    std::uint64_t sends = 0;               ///< Packets this NCU injected.
    std::uint64_t crashes = 0;             ///< Hard failures (soft state lost).
    std::uint64_t restarts = 0;            ///< Recoveries (on_restart invocations).
    Tick busy_time = 0;                    ///< Total time the NCU was occupied.

    /// System-call complexity contribution of this node: the number of
    /// times the NCU was involved. Message deliveries are what Theorems
    /// 2/3/5 count; starts/timers/link events are tracked separately and
    /// reported alongside (they are O(n) one-offs in all our protocols).
    std::uint64_t invocations() const {
        return message_deliveries + starts + restarts + timer_fires + link_events;
    }
};

/// Network-wide hardware accounting.
struct NetCounters {
    std::uint64_t injections = 0;             ///< send() calls (direct messages).
    std::uint64_t hops = 0;                   ///< Link traversals.
    std::uint64_t ncu_deliveries = 0;         ///< Deliveries into any NCU.
    std::uint64_t drops_inactive_link = 0;    ///< Lost to failed links.
    std::uint64_t drops_no_match = 0;         ///< Label matched no port.
    std::uint64_t drops_empty_header = 0;     ///< Header exhausted mid-switch.
    std::size_t max_header_len = 0;           ///< Longest ANR header injected.
    /// Total ANR header bits carried across links (labels in flight x
    /// the network's label width k = O(log m) bits). This is the
    /// hardware bandwidth consumed by source routing itself — the
    /// quantity whose growth motivates the dmax restriction.
    std::uint64_t header_bits = 0;
    std::uint64_t drops_injected = 0;  ///< Fault injection: lossy-link drops.
    std::uint64_t dup_copies = 0;      ///< Fault injection: duplicated packets.
};

/// Where the bytes of a cluster live at one instant. All quantities are
/// *logical* capacity-based bytes (what the data structures asked for,
/// not what the allocator rounded to): deterministic and portable, so
/// benches can gate on them across machines.
struct MemoryBreakdown {
    std::uint64_t graph = 0;      ///< Topology: edges, chains, CSR.
    std::uint64_t network = 0;    ///< Fabric: ports, links, packet slabs.
    std::uint64_t runtimes = 0;   ///< NCU runtimes incl. link tables/queues.
    std::uint64_t protocols = 0;  ///< Protocol instances (self-reported).
    /// Arena occupancy. `arena_used` overlaps `runtimes` (link tables and
    /// the runtime array are arena-resident) — it is reported for
    /// allocator visibility, NOT added into total().
    std::uint64_t arena_used = 0;
    std::uint64_t arena_reserved = 0;
    /// Resident trace footprint (ring + detail arena capacity; see
    /// sim::Trace::resident_bytes). Observability memory, reported
    /// separately from the per-node total() so traced and untraced runs
    /// gate the same bytes/node quantity.
    std::uint64_t trace = 0;

    std::uint64_t total() const { return graph + network + runtimes + protocols; }
};

/// One memory observation (Cluster::sample_memory).
struct MemorySample {
    Tick at = 0;
    MemoryBreakdown breakdown;
    std::uint64_t max_node_bytes = 0;  ///< Heaviest runtime+protocol pair.
    NodeId max_node = kNoNode;
};

/// Optional windowed samplers riding the ledger (enable_sampling).
/// Totals answer "how much"; these answer "when, where, and on which
/// budget" — each tick of work is attributed to the hardware-C or
/// software-P side per node, matching the (C, P) split of Section 5.
class Sampling {
public:
    Sampling(NodeId node_count, Tick window);

    Tick window() const { return window_; }

    struct NodeSeries {
        TimeSeries busy;         ///< Software (P) ticks spent per window.
        TimeSeries hw_time;      ///< Hardware (C) ticks of hops carrying
                                 ///< packets *this node injected*.
        TimeSeries deliveries;   ///< System calls completed per window.
        TimeSeries queue_depth;  ///< NCU queue depth at enqueue (see max).
    };

    NodeSeries& node(NodeId u) { return nodes_[u]; }
    const NodeSeries& node(NodeId u) const { return nodes_[u]; }
    NodeId node_count() const { return static_cast<NodeId>(nodes_.size()); }

    TimeSeries& hops() { return hops_; }
    const TimeSeries& hops() const { return hops_; }
    TimeSeries& sends() { return sends_; }
    const TimeSeries& sends() const { return sends_; }
    TimeSeries& drops() { return drops_; }
    const TimeSeries& drops() const { return drops_; }

    LogHistogram& hop_latency() { return hop_latency_; }
    const LogHistogram& hop_latency() const { return hop_latency_; }
    LogHistogram& delivery_latency() { return delivery_latency_; }
    const LogHistogram& delivery_latency() const { return delivery_latency_; }
    LogHistogram& header_len() { return header_len_; }
    const LogHistogram& header_len() const { return header_len_; }
    LogHistogram& ncu_busy() { return ncu_busy_; }
    const LogHistogram& ncu_busy() const { return ncu_busy_; }
    LogHistogram& queue_depth() { return queue_depth_; }
    const LogHistogram& queue_depth() const { return queue_depth_; }

    /// Mean bytes/node at each memory sample (fed by
    /// Cluster::sample_memory; empty unless memory sampling is on).
    TimeSeries& bytes_per_node() { return bytes_per_node_; }
    const TimeSeries& bytes_per_node() const { return bytes_per_node_; }

    /// Counts one system call under experiment phase `phase` (phases are
    /// marked by the harness — Scenario::mark_phase / Metrics::set_phase).
    /// Stored in first-use order, so serialization is deterministic.
    void phase_call(std::uint64_t phase);

    /// Accumulates another sampler with the same window and node count
    /// into this one. Merged phase_calls are re-sorted by phase id —
    /// per-shard first-use order depends on the partition, phase ids do
    /// not (see Metrics::merge_from).
    void merge_from(const Sampling& o);
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& phase_calls() const {
        return phase_calls_;
    }

private:
    Tick window_;
    std::vector<NodeSeries> nodes_;
    TimeSeries hops_, sends_, drops_, bytes_per_node_;
    LogHistogram hop_latency_, delivery_latency_, header_len_, ncu_busy_, queue_depth_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> phase_calls_;
};

/// Call-level accounting for the PARIS workload (ROADMAP item 3): final
/// outcome counters plus latency/retry distributions. Sources tally
/// their own calls; the harness folds per-agent stats into the run's
/// ledger in node order (paris::fold_call_stats), so the serialized
/// result is independent of thread and shard counts. All-integer, so
/// merge_from is exact.
struct CallStats {
    std::uint64_t offered = 0;    ///< Arrivals (scripted + generated).
    std::uint64_t shed = 0;       ///< Refused by admission control.
    std::uint64_t placed = 0;     ///< Setup attempts injected (incl. retries).
    std::uint64_t accepted = 0;   ///< Went active.
    std::uint64_t blocked = 0;    ///< Final capacity/timeout rejection.
    std::uint64_t completed = 0;  ///< Released after a full holding time.
    std::uint64_t failed = 0;     ///< Lost to link failure after activation.
    std::uint64_t timeouts = 0;   ///< Setup timer expiries.
    std::uint64_t retries = 0;    ///< Re-placements after backoff.
    std::uint64_t reaped = 0;     ///< Orphaned reservations reclaimed by lease expiry.
    LogHistogram setup_latency;   ///< Ticks from first placement to active.
    LogHistogram retries_per_call;  ///< Per finally-resolved call.

    bool any() const { return offered != 0 || placed != 0; }
    /// Erlang-style blocking: offered calls that never went active.
    double blocking_probability() const {
        return offered == 0 ? 0.0
                            : static_cast<double>(shed + blocked) /
                                  static_cast<double>(offered);
    }
    void merge_from(const CallStats& o);
};

/// Which NCU handler a profiled invocation ran (mirrors
/// obs::MonitorEvent::InvokeKind — cost:: stays below obs:: in the layer
/// order, so the enum is duplicated here).
enum class HandlerKind : std::uint8_t { kStart = 0, kRestart, kDelivery, kLink, kTimer };

inline constexpr unsigned kHandlerKindCount = 5;

const char* handler_kind_name(HandlerKind k);

/// Always-on sampling profiler: per-protocol × per-handler-kind busy-tick
/// histograms, fed by NodeRuntime on every completed handler. The hot
/// path is one bounds check plus a LogHistogram::add — no allocation, no
/// branch on configuration — so it stays on in production runs (gated ≤5%
/// overhead in bench_obs_overhead). Protocols register once at cluster
/// construction; an unregistered runtime (id kNoProtocol) records
/// nothing.
class Profiler {
public:
    static constexpr std::uint16_t kNoProtocol = 0xffff;

    struct Entry {
        std::string name;
        std::array<LogHistogram, kHandlerKindCount> by_kind;

        std::uint64_t invocations() const {
            std::uint64_t total = 0;
            for (const LogHistogram& h : by_kind) total += h.count();
            return total;
        }
        Tick busy_ticks() const {
            std::uint64_t total = 0;
            for (const LogHistogram& h : by_kind) total += h.sum();
            return static_cast<Tick>(total);
        }
    };

    /// Registers (or finds) the entry for `name`; returns its id.
    std::uint16_t register_protocol(std::string_view name);

    /// Hot path: counts one completed handler invocation.
    void record(std::uint16_t id, HandlerKind kind, Tick busy) {
        if (id >= entries_.size()) return;
        entries_[id].by_kind[static_cast<unsigned>(kind)].add(
            static_cast<std::uint64_t>(busy < 0 ? 0 : busy));
    }

    const std::vector<Entry>& entries() const { return entries_; }
    bool any() const;

    /// Entry indices sorted by protocol name — per-shard registration
    /// order depends on the partition, names do not, so serialization
    /// goes through this view.
    std::vector<std::size_t> sorted() const;

    /// Accumulates another profiler, matching entries by name (exact:
    /// all-integer histograms).
    void merge_from(const Profiler& o);
    void reset();

private:
    std::vector<Entry> entries_;
};

/// One latency-attribution segment kind on a causal critical path
/// (mirrors obs::SegmentKind — cost:: stays below obs:: in the layer
/// order, so the enum lives here and obs reuses it). The five kinds
/// tile a chain's end-to-end latency exactly: every tick between the
/// root injection and the terminal handler completion is attributed to
/// exactly one of them (see src/obs/critical_path.hpp).
enum class PathSegmentKind : std::uint8_t {
    kQueueing = 0,   ///< Waiting for an NCU slot (or A1 send serialization).
    kTransit,        ///< In flight on the fabric (hops, link delays).
    kHandler,        ///< Inside a handler's busy window.
    kTimerWait,      ///< Armed timer waiting to fire.
    kRetryBackoff,   ///< Timer wait reclassified as retry backoff (cookie kind).
};

inline constexpr unsigned kPathSegmentKindCount = 5;

const char* path_segment_kind_name(PathSegmentKind k);

/// Critical-path attribution of one completed run, folded into the
/// ledger post-run by whoever computed it (obs::CriticalPathBuilder via
/// obs::to_path_stats). Serialized as the "critical_path" section of
/// metrics JSON; null until computed.
struct CriticalPathStats {
    /// One root chain: root injection -> terminal handler completion.
    struct Path {
        std::uint64_t root = 0;       ///< Root lineage id.
        Tick root_start = 0;          ///< Root injection tick.
        Tick end = 0;                 ///< Terminal handler completion tick.
        std::uint64_t terminal = 0;   ///< Terminal lineage id.
        NodeId terminal_node = kNoNode;
        std::uint32_t depth = 0;      ///< Handler completions on the chain.
        /// Per-kind tick totals, indexed by PathSegmentKind; sums
        /// exactly to latency().
        std::array<Tick, kPathSegmentKindCount> segments{};

        Tick latency() const { return end - root_start; }
        Tick segment_sum() const {
            Tick s = 0;
            for (const Tick t : segments) s += t;
            return s;
        }
    };

    bool computed = false;
    Path witness;               ///< The chain ending at the last delivery.
    std::vector<Path> top;      ///< Slowest root chains, latency-descending.
    std::uint64_t deliveries = 0;      ///< Deliveries the pass attributed.
    std::uint64_t unanchored = 0;      ///< Legs priced without chain context.
    std::uint64_t clamped = 0;         ///< Anchor/busy clamps applied.
    std::uint64_t pruned = 0;          ///< Live chain entries aged out.

    bool any() const { return computed; }
};

/// Trace-ledger totals folded in by the cluster at the end of a run —
/// the explicit answer to "did the ring silently truncate?" plus the
/// spill subsystem's footprint (see sim/trace_spill.hpp). Serialized as
/// the "trace" section of metrics JSON.
struct TraceStats {
    std::uint64_t total_recorded = 0;
    std::uint64_t dropped = 0;          ///< Lost to ring overwrite.
    std::uint64_t detail_dropped = 0;   ///< Detail strings the arena refused.
    std::uint64_t spilled_records = 0;
    std::uint64_t spill_segments = 0;
    std::uint64_t spilled_bytes = 0;
    std::uint64_t resident_bytes = 0;   ///< Ring + arena capacity at fold time.

    bool any() const { return total_recorded != 0 || dropped != 0 || detail_dropped != 0; }
    void merge_from(const TraceStats& o);
};

/// One experiment's ledger; owned by the Cluster, shared by reference.
class Metrics {
public:
    explicit Metrics(NodeId node_count) : nodes_(node_count) {}

    NodeCounters& node(NodeId u) { return nodes_[u]; }
    const NodeCounters& node(NodeId u) const { return nodes_[u]; }
    NodeId node_count() const { return static_cast<NodeId>(nodes_.size()); }

    NetCounters& net() { return net_; }
    const NetCounters& net() const { return net_; }

    /// Sum over nodes of message-delivery system calls — the paper's
    /// system-call complexity for message-driven algorithms.
    std::uint64_t total_message_system_calls() const;

    /// Sum over nodes of all NCU involvements.
    std::uint64_t total_invocations() const;

    /// Total direct messages injected by NCUs.
    std::uint64_t total_direct_messages() const { return net_.injections; }

    /// Resets all counters (e.g. after a warm-up phase) without
    /// disturbing the simulation state. Sampling windows (if enabled)
    /// restart empty with the same window width.
    void reset();

    /// Accumulates another ledger of the same node count into this one —
    /// how the parallel kernel folds per-shard ledgers into the one a
    /// sequential run would have produced. Counters add (max_header_len
    /// takes the max); sampling merges window-wise when both sides have
    /// it. Everything is integer or integral-double arithmetic, so the
    /// result is exact and independent of merge order.
    void merge_from(const Metrics& o);

    // ---- windowed samplers (optional; see Sampling) -------------------
    /// Turns on time-series/histogram sampling with `window`-tick
    /// windows. Off by default: an unsampled run pays only one null
    /// check per hook.
    void enable_sampling(Tick window);
    Sampling* sampling() { return sampling_.get(); }
    const Sampling* sampling() const { return sampling_.get(); }

    /// Current experiment phase label; system calls completed while the
    /// phase is `p` are counted under `p` when sampling is enabled.
    void set_phase(std::uint64_t p) { phase_ = p; }
    std::uint64_t phase() const { return phase_; }

    // ---- call ledger (fed by paris::fold_call_stats post-run) ---------
    CallStats& calls() { return calls_; }
    const CallStats& calls() const { return calls_; }

    // ---- handler profiler (always on; fed by NodeRuntime) -------------
    Profiler& profiler() { return profiler_; }
    const Profiler& profiler() const { return profiler_; }

    // ---- trace ledger (fed by the cluster at end of run) --------------
    void set_trace_stats(const TraceStats& s) { trace_stats_ = s; }
    const TraceStats& trace_stats() const { return trace_stats_; }

    // ---- critical-path ledger (fed post-run by the attribution pass) --
    void set_critical_path(CriticalPathStats s) { critical_path_ = std::move(s); }
    const CriticalPathStats& critical_path() const { return critical_path_; }

    // ---- memory ledger (optional; fed by Cluster::sample_memory) ------
    /// Records one observation: keeps it as the latest, bumps the sample
    /// count, tracks the peak per-node footprint seen, and (when windowed
    /// sampling is on) appends mean bytes/node to the sampling series.
    void record_memory(const MemorySample& s);
    /// Latest observation, or nullptr when none was ever recorded.
    const MemorySample* memory() const {
        return memory_samples_ > 0 ? &memory_latest_ : nullptr;
    }
    std::uint64_t memory_samples() const { return memory_samples_; }
    std::uint64_t peak_node_bytes() const { return peak_node_bytes_; }

private:
    std::vector<NodeCounters> nodes_;
    NetCounters net_;
    CallStats calls_;
    Profiler profiler_;
    TraceStats trace_stats_;
    CriticalPathStats critical_path_;
    std::unique_ptr<Sampling> sampling_;
    std::uint64_t phase_ = 0;
    MemorySample memory_latest_;
    std::uint64_t memory_samples_ = 0;
    std::uint64_t peak_node_bytes_ = 0;
};

/// Snapshot of the headline costs for reporting.
struct CostReport {
    std::uint64_t system_calls = 0;      ///< Message deliveries to NCUs.
    std::uint64_t invocations = 0;       ///< All NCU involvements.
    std::uint64_t direct_messages = 0;   ///< NCU send() injections.
    std::uint64_t hops = 0;              ///< Hardware link traversals.
    std::size_t max_header_len = 0;
    Tick completion_time = 0;
};

CostReport snapshot(const Metrics& m, Tick completion_time);

std::ostream& operator<<(std::ostream& os, const CostReport& r);

}  // namespace fastnet::cost
