// fastnet_report: turn archived bench runs + audit/monitor exports into
// one markdown report.
//
// Ingests the bench history tree maintained by scripts/bench_history.sh
// (bench/history/INDEX lists git shas oldest-first; each
// bench/history/<sha>/ holds the BENCH_*.json and AUDIT_*.json files of
// that revision) plus any explicitly named sweep/monitor exports, and
// emits:
//
//   * per-bench metric trajectories across snapshots, with the relative
//     delta of the newest snapshot against its predecessor — direction
//     aware, the same rule as scripts/bench_diff.py: units containing
//     "per_sec" regress downwards, everything else regresses upwards;
//   * theorem-bound audit tables (obs::BoundAudit exports, re-verified
//     on load — the verdict column is recomputed, not trusted);
//   * live invariant monitor violations (obs::violations_json exports);
//   * sweep summaries (exec::sweep_json files, e.g. the chaos harness
//     output), surfacing failed cases and monitor-violation counts.
//
//   fastnet_report --history bench/history
//   fastnet_report --history bench/history --fail-on-regression 5
//   fastnet_report --audit AUDIT_broadcast.json --monitors t.monitors.json
//   fastnet_report --history bench/history --sweep chaos_smoke.json --out R.md
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exec/result.hpp"
#include "obs/audit.hpp"
#include "obs/json.hpp"

using namespace fastnet;

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--history DIR] [--audit FILE]... [--monitors FILE]...\n"
                 "       [--sweep FILE]... [--metrics FILE]... [--out FILE]\n"
                 "       [--fail-on-regression PCT]\n"
                 "  --history DIR          bench history tree (DIR/INDEX + DIR/<sha>/)\n"
                 "  --audit FILE           extra bound-audit export (AUDIT_*.json)\n"
                 "  --monitors FILE        monitor-violation export (*.monitors.json)\n"
                 "  --sweep FILE           sweep result export (exec::sweep_json)\n"
                 "  --metrics FILE         metrics JSON export; renders its\n"
                 "                         \"critical_path\" section as a slowest-paths table\n"
                 "  --out FILE             write the markdown report here (default stdout)\n"
                 "  --fail-on-regression PCT  exit 1 when the newest snapshot regresses\n"
                 "                         any metric more than PCT percent\n";
    return 2;
}

bool read_file(const std::string& path, std::string& out) {
    std::ifstream f(path, std::ios::binary);
    if (!f) return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return static_cast<bool>(f);
}

/// One BENCH_*.json, flattened to name -> (value, unit).
struct BenchRun {
    std::string bench;
    std::vector<std::string> order;  ///< Metric names as written.
    std::map<std::string, std::pair<double, std::string>> metrics;
};

bool load_bench(const std::string& path, BenchRun& out, std::string& error) {
    std::string text;
    if (!read_file(path, text)) {
        error = "cannot read " + path;
        return false;
    }
    obs::JsonValue doc;
    if (!obs::json_parse(text, doc, &error)) {
        error = path + ": " + error;
        return false;
    }
    const obs::JsonValue* bench = doc.find("bench");
    const obs::JsonValue* results = doc.find("results");
    if (!bench || !bench->is_string() || !results || !results->is_array()) {
        error = path + ": not a BENCH_*.json export";
        return false;
    }
    out.bench = bench->string;
    for (const obs::JsonValue& entry : results->array) {
        const obs::JsonValue* name = entry.find("name");
        const obs::JsonValue* value = entry.find("value");
        const obs::JsonValue* unit = entry.find("unit");
        if (!name || !name->is_string() || !value || !value->is_number()) {
            error = path + ": malformed results entry";
            return false;
        }
        if (!out.metrics.count(name->string)) out.order.push_back(name->string);
        out.metrics[name->string] = {value->as_double(),
                                     unit && unit->is_string() ? unit->string : ""};
    }
    return true;
}

/// The same direction rule as scripts/bench_diff.py: throughput and
/// carried-work units ("per_sec", "calls" — e.g. the call benches'
/// carried load — and the profiler's "invocations") regress downwards;
/// cost units (ns, ms, allocs, pct, ticks, retries, and the critical-path
/// bench's "path_ticks"/"segments" latency attribution) regress upwards.
bool higher_is_better(const std::string& unit) {
    return unit.find("per_sec") != std::string::npos || unit == "calls" ||
           unit == "invocations";
}

struct Snapshot {
    std::string sha;
    std::map<std::string, BenchRun> benches;  ///< Keyed by bench name.
};

/// A metric regression between the two newest snapshots.
struct Regression {
    std::string bench, metric, unit;
    double delta_pct = 0;
};

std::string fmt(double v) { return exec::format_double(v); }

/// Delta with its direction resolved per unit, so a bytes/node or ns
/// drop and a throughput rise both read "better": "-3.10% (better)",
/// "+4.00% (worse)".
std::string fmt_delta(double old_v, double new_v, const std::string& unit) {
    if (old_v == 0) return new_v == 0 ? "n/a" : "inf";
    const double pct = 100.0 * (new_v - old_v) / std::abs(old_v);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%+.2f%%", pct);
    std::string out = buf;
    if (pct != 0)
        out += (higher_is_better(unit) ? pct > 0 : pct < 0) ? " (better)" : " (worse)";
    return out;
}

void report_trajectories(std::string& md, const std::vector<Snapshot>& history,
                         double fail_pct, bool fail_set,
                         std::vector<Regression>& regressions) {
    md += "## Bench trajectories\n\n";
    if (history.size() < 2)
        md += "_One snapshot only — deltas need at least two._\n\n";

    // Bench names in first-appearance order across the history.
    std::vector<std::string> bench_names;
    for (const Snapshot& s : history)
        for (const auto& [name, run] : s.benches)
            if (std::find(bench_names.begin(), bench_names.end(), name) == bench_names.end())
                bench_names.push_back(name);

    for (const std::string& bench : bench_names) {
        md += "### ";
        md += bench;
        md += "\n\n";
        md += "| metric |";
        for (const Snapshot& s : history) {
            md += " ";
            md += s.sha;
            md += " |";
        }
        md += " delta | unit |\n";
        md += "|---|";
        for (std::size_t i = 0; i < history.size(); ++i) md += "---:|";
        md += "---:|---|\n";

        // Metric order from the newest snapshot that has this bench.
        const BenchRun* newest = nullptr;
        for (auto it = history.rbegin(); it != history.rend() && !newest; ++it)
            if (auto b = it->benches.find(bench); b != it->benches.end()) newest = &b->second;
        std::vector<std::string> metric_names = newest->order;
        for (const Snapshot& s : history)
            if (auto b = s.benches.find(bench); b != s.benches.end())
                for (const std::string& m : b->second.order)
                    if (std::find(metric_names.begin(), metric_names.end(), m) ==
                        metric_names.end())
                        metric_names.push_back(m);

        for (const std::string& metric : metric_names) {
            md += "| ";
            md += metric;
            md += " |";
            std::string unit;
            const std::pair<double, std::string>* prev = nullptr;
            const std::pair<double, std::string>* last = nullptr;
            for (const Snapshot& s : history) {
                const auto b = s.benches.find(bench);
                if (b == s.benches.end() || !b->second.metrics.count(metric)) {
                    md += " - |";
                    continue;
                }
                const auto& entry = b->second.metrics.at(metric);
                md += " ";
                md += fmt(entry.first);
                md += " |";
                unit = entry.second;
                prev = last;
                last = &entry;
            }
            if (prev && last) {
                md += " ";
                md += fmt_delta(prev->first, last->first, unit);
                md += " |";
                if (fail_set && prev->first != 0) {
                    const double pct =
                        100.0 * (last->first - prev->first) / std::abs(prev->first);
                    const double regressed = higher_is_better(unit) ? -pct : pct;
                    if (regressed > fail_pct)
                        regressions.push_back({bench, metric, unit, pct});
                }
            } else {
                md += " n/a |";
            }
            md += " ";
            md += unit;
            md += " |\n";
        }
        md += "\n";
    }
}

void report_audit(std::string& md, const std::string& path, const obs::BoundAudit& audit) {
    md += "### " + audit.name() + " (`" + path + "`)\n\n";
    md += audit.pass() ? "All bounds hold.\n\n"
                       : "**" + std::to_string(audit.violation_count()) +
                             " bound violation(s).**\n\n";
    md += "| check | kind | bound | observed | slack | verdict |\n";
    md += "|---|---|---:|---:|---:|---|\n";
    for (const obs::BoundCheck& c : audit.checks()) {
        md += "| " + c.name + " | " + obs::bound_check_kind_name(c.kind) + " | " +
              fmt(c.bound) + " | " + fmt(c.observed) + " | " + fmt(c.slack) + " | " +
              (c.pass ? "pass" : "**VIOLATION**") + " |\n";
    }
    md += "\n";
}

bool report_monitors(std::string& md, const std::string& path, const std::string& text,
                     std::string& error) {
    obs::JsonValue doc;
    if (!obs::json_parse(text, doc, &error)) return false;
    const obs::JsonValue* magic = doc.find("fastnet_monitors");
    if (!magic || !magic->is_uint() || magic->uint_value != 1) {
        error = "not an obs::violations_json export";
        return false;
    }
    const obs::JsonValue* name = doc.find("name");
    const obs::JsonValue* count = doc.find("violation_count");
    const obs::JsonValue* violations = doc.find("violations");
    md += "### " + (name && name->is_string() ? name->string : path) + " (`" + path +
          "`)\n\n";
    const std::uint64_t total = count && count->is_uint() ? count->uint_value : 0;
    if (total == 0) {
        md += "No invariant violations.\n\n";
        return true;
    }
    md += "**" + std::to_string(total) + " violation(s).**\n\n";
    md += "| monitor | at | node | lineage | message |\n|---|---:|---:|---:|---|\n";
    if (violations && violations->is_array())
        for (const obs::JsonValue& v : violations->array) {
            const obs::JsonValue* m = v.find("monitor");
            const obs::JsonValue* at = v.find("at");
            const obs::JsonValue* node = v.find("node");
            const obs::JsonValue* lineage = v.find("lineage");
            const obs::JsonValue* msg = v.find("message");
            md += "| " + (m && m->is_string() ? m->string : "?") + " | " +
                  (at && at->is_number() ? fmt(at->as_double()) : "-") + " | " +
                  (node && node->is_number() ? fmt(node->as_double()) : "-") + " | " +
                  (lineage && lineage->is_number() ? fmt(lineage->as_double()) : "-") +
                  " | " + (msg && msg->is_string() ? msg->string : "") + " |\n";
        }
    md += "\n";
    return true;
}

bool report_sweep(std::string& md, const std::string& path, const std::string& text,
                  std::string& error) {
    obs::JsonValue doc;
    if (!obs::json_parse(text, doc, &error)) return false;
    const obs::JsonValue* sweep = doc.find("sweep");
    const obs::JsonValue* tasks = doc.find("tasks");
    if (!sweep || !sweep->is_string() || !tasks || !tasks->is_array()) {
        error = "not an exec::sweep_json export";
        return false;
    }
    std::size_t failed = 0;
    double monitor_violations = 0;
    for (const obs::JsonValue& t : tasks->array) {
        const obs::JsonValue* ok = t.find("ok");
        if (ok && ok->type == obs::JsonValue::Type::kBool && !ok->boolean) ++failed;
        if (const obs::JsonValue* mv = t.find("monitor_violations"); mv && mv->is_number())
            monitor_violations += mv->as_double();
    }
    md += "### " + sweep->string + " (`" + path + "`)\n\n";
    md += std::to_string(tasks->array.size()) + " cases, " + std::to_string(failed) +
          " failed, " + fmt(monitor_violations) + " monitor violation(s).\n\n";
    if (failed != 0) {
        md += "| failed case |\n|---|\n";
        for (const obs::JsonValue& t : tasks->array) {
            const obs::JsonValue* ok = t.find("ok");
            const obs::JsonValue* name = t.find("name");
            if (ok && ok->type == obs::JsonValue::Type::kBool && !ok->boolean)
                md += "| " + (name && name->is_string() ? name->string : "?") + " |\n";
        }
        md += "\n";
    }
    return true;
}

/// Renders a metrics export's "critical_path" section: the witness chain
/// plus the top-N slowest roots as one table, latency-descending — the
/// human-readable face of obs::critical_path. Latency columns are
/// lower-is-better (the bench trajectories above apply that direction to
/// the path_ticks unit).
bool report_critical_path(std::string& md, const std::string& path,
                          const std::string& text, std::string& error) {
    obs::JsonValue doc;
    if (!obs::json_parse(text, doc, &error)) return false;
    if (doc.find("fastnet_metrics") == nullptr) {
        error = "not a metrics JSON export";
        return false;
    }
    const obs::JsonValue* name = doc.find("name");
    md += "### " + (name && name->is_string() ? name->string : path) + " (`" + path +
          "`)\n\n";
    const obs::JsonValue* cp = doc.find("critical_path");
    if (cp == nullptr || !cp->is_object()) {
        md += "_No critical_path section (trace not priced)._\n\n";
        return true;
    }
    const auto count = [cp](const char* key) -> std::uint64_t {
        const obs::JsonValue* v = cp->find(key);
        return v != nullptr && v->is_uint() ? v->uint_value : 0;
    };
    md += "| path | latency | depth | terminal | queueing | transit | handler "
          "| timer_wait | retry_backoff |\n";
    md += "|---|---:|---:|---|---:|---:|---:|---:|---:|\n";
    const auto row = [&md](const std::string& label, const obs::JsonValue& p) {
        const auto field = [&p](const char* key) -> std::string {
            const obs::JsonValue* v = p.find(key);
            return v != nullptr && v->is_number() ? fmt(v->as_double()) : "-";
        };
        const obs::JsonValue* terminal = p.find("terminal");
        const obs::JsonValue* node = p.find("terminal_node");
        md += "| " + label + " | " + field("latency") + " | " + field("depth") + " | " +
              (terminal != nullptr && terminal->is_uint()
                   ? std::to_string(terminal->uint_value)
                   : "-") +
              "@" + (node != nullptr && node->is_uint() ? std::to_string(node->uint_value)
                                                        : "-") +
              " | " + field("queueing") + " | " + field("transit") + " | " +
              field("handler") + " | " + field("timer_wait") + " | " +
              field("retry_backoff") + " |\n";
    };
    if (const obs::JsonValue* w = cp->find("witness"); w != nullptr && w->is_object())
        row("witness", *w);
    if (const obs::JsonValue* top = cp->find("top"); top != nullptr && top->is_array()) {
        std::size_t i = 0;
        for (const obs::JsonValue& p : top->array)
            if (p.is_object()) row(std::to_string(++i), p);
    }
    md += "\n" + std::to_string(count("deliveries")) + " deliveries priced; " +
          std::to_string(count("unanchored")) + " unanchored, " +
          std::to_string(count("clamped")) + " clamped, " + std::to_string(count("pruned")) +
          " pruned.\n\n";
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    std::string history_dir, out_path;
    std::vector<std::string> audit_paths, monitor_paths, sweep_paths, metrics_paths;
    double fail_pct = 0;
    bool fail_set = false;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--history") == 0 && has_value) {
            history_dir = argv[++i];
        } else if (std::strcmp(arg, "--audit") == 0 && has_value) {
            audit_paths.push_back(argv[++i]);
        } else if (std::strcmp(arg, "--monitors") == 0 && has_value) {
            monitor_paths.push_back(argv[++i]);
        } else if (std::strcmp(arg, "--sweep") == 0 && has_value) {
            sweep_paths.push_back(argv[++i]);
        } else if (std::strcmp(arg, "--metrics") == 0 && has_value) {
            metrics_paths.push_back(argv[++i]);
        } else if (std::strcmp(arg, "--out") == 0 && has_value) {
            out_path = argv[++i];
        } else if (std::strcmp(arg, "--fail-on-regression") == 0 && has_value) {
            fail_pct = std::strtod(argv[++i], nullptr);
            fail_set = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (history_dir.empty() && audit_paths.empty() && monitor_paths.empty() &&
        sweep_paths.empty() && metrics_paths.empty())
        return usage(argv[0]);

    // --- load history -----------------------------------------------------
    std::vector<Snapshot> history;
    if (!history_dir.empty()) {
        std::ifstream index(history_dir + "/INDEX");
        if (!index) {
            std::cerr << "cannot read " << history_dir << "/INDEX\n";
            return 2;
        }
        std::string sha;
        while (std::getline(index, sha)) {
            if (sha.empty() || sha[0] == '#') continue;
            Snapshot snap;
            snap.sha = sha;
            const std::filesystem::path dir =
                std::filesystem::path(history_dir) / sha;
            std::error_code ec;
            std::vector<std::string> files;
            for (const auto& entry : std::filesystem::directory_iterator(dir, ec))
                files.push_back(entry.path().string());
            if (ec) {
                std::cerr << "warning: skipping " << dir.string() << ": "
                          << ec.message() << "\n";
                continue;
            }
            std::sort(files.begin(), files.end());
            for (const std::string& file : files) {
                const std::string base = std::filesystem::path(file).filename().string();
                if (base.rfind("BENCH_", 0) != 0 || file.size() < 5 ||
                    file.compare(file.size() - 5, 5, ".json") != 0)
                    continue;
                BenchRun run;
                std::string error;
                if (!load_bench(file, run, error)) {
                    std::cerr << "warning: " << error << "\n";
                    continue;
                }
                snap.benches[run.bench] = std::move(run);
            }
            history.push_back(std::move(snap));
        }
        // The newest snapshot's audits ride along automatically.
        if (!history.empty()) {
            const std::filesystem::path dir =
                std::filesystem::path(history_dir) / history.back().sha;
            std::error_code ec;
            std::vector<std::string> files;
            for (const auto& entry : std::filesystem::directory_iterator(dir, ec))
                files.push_back(entry.path().string());
            std::sort(files.begin(), files.end());
            for (const std::string& file : files) {
                const std::string base = std::filesystem::path(file).filename().string();
                if (base.rfind("AUDIT_", 0) == 0) audit_paths.push_back(file);
            }
        }
    }

    // --- build the report -------------------------------------------------
    std::string md = "# fastnet bench report\n\n";
    std::vector<Regression> regressions;

    if (!history.empty()) {
        md += std::to_string(history.size()) + " snapshot(s)";
        if (history.size() > 1)
            md += " (" + history.front().sha + " .. " + history.back().sha + ")";
        md += ".\n\n";
        report_trajectories(md, history, fail_pct, fail_set, regressions);
    }

    if (!audit_paths.empty()) {
        md += "## Theorem-bound audits\n\n";
        for (const std::string& path : audit_paths) {
            std::string text, error;
            obs::BoundAudit audit("");
            if (!read_file(path, text) || !obs::load_audit(text, audit, &error)) {
                std::cerr << path << ": " << (text.empty() ? "cannot read" : error) << "\n";
                return 2;
            }
            report_audit(md, path, audit);
        }
    }

    if (!monitor_paths.empty()) {
        md += "## Invariant monitors\n\n";
        for (const std::string& path : monitor_paths) {
            std::string text, error;
            if (!read_file(path, text) || !report_monitors(md, path, text, error)) {
                std::cerr << path << ": " << (text.empty() ? "cannot read" : error) << "\n";
                return 2;
            }
        }
    }

    if (!sweep_paths.empty()) {
        md += "## Sweeps\n\n";
        for (const std::string& path : sweep_paths) {
            std::string text, error;
            if (!read_file(path, text) || !report_sweep(md, path, text, error)) {
                std::cerr << path << ": " << (text.empty() ? "cannot read" : error) << "\n";
                return 2;
            }
        }
    }

    if (!metrics_paths.empty()) {
        md += "## Critical paths\n\n";
        for (const std::string& path : metrics_paths) {
            std::string text, error;
            if (!read_file(path, text) || !report_critical_path(md, path, text, error)) {
                std::cerr << path << ": " << (text.empty() ? "cannot read" : error) << "\n";
                return 2;
            }
        }
    }

    if (fail_set) {
        md += "## Regression gate\n\n";
        if (regressions.empty()) {
            md += "No metric regressed beyond " + fmt(fail_pct) + "%.\n";
        } else {
            md += "**" + std::to_string(regressions.size()) +
                  " metric(s) regressed beyond " + fmt(fail_pct) + "%:**\n\n";
            md += "| bench | metric | delta | unit |\n|---|---|---:|---|\n";
            for (const Regression& r : regressions) {
                char buf[64];
                std::snprintf(buf, sizeof buf, "%+.2f%%", r.delta_pct);
                md += "| " + r.bench + " | " + r.metric + " | " + buf + " | " + r.unit +
                      " |\n";
            }
        }
    }

    if (out_path.empty()) {
        std::cout << md;
    } else if (!exec::write_text_file(out_path, md)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 2;
    } else {
        std::cout << "wrote " << out_path << "\n";
    }

    if (!regressions.empty()) {
        std::cerr << regressions.size() << " regression(s) beyond " << fail_pct << "%\n";
        return 1;
    }
    return 0;
}
