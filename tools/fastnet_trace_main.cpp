// fastnet_trace: inspect exported traces from the command line.
//
// Reads a canonical trace export (see src/obs/trace_export.hpp) and
// filters, summarizes or causally reconstructs it — everything the
// in-process query API (src/obs/trace_query.hpp) offers, available
// offline on the file alone. `--check` validates either export format
// (canonical or Chrome trace-event JSON) and is what the TraceSmoke
// ctest runs against freshly exported files.
//
//   fastnet_trace trace.json                      # print all records
//   fastnet_trace trace.json --node 3 --kind drop # filter
//   fastnet_trace trace.json --lineage 17         # one lineage's records
//   fastnet_trace trace.json --chain 17           # full causal chain
//   fastnet_trace trace.json --summary            # per-kind counts
//   fastnet_trace trace.json --reconvergence      # crash/recovery timeline
//   fastnet_trace trace.json --violations         # violations + causal chains
//   fastnet_trace trace.json --calls              # per-call leg reconstruction
//   fastnet_trace trace.json --check              # schema validation only
//
// FILE may also be a trace spill file or a directory of per-shard spill
// files (see src/sim/trace_spill.hpp). Every query then streams the
// deterministic k-way merge instead of loading an export; the causal
// queries (--chain, --violations) resolve ancestry through the lineage
// index sidecar (built and cached on first use) rather than scanning
// the merged records per lineage.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/spill_query.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_query.hpp"
#include "paris/call_setup.hpp"
#include "sim/trace_spill.hpp"

using namespace fastnet;

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " FILE [--check] [--summary] [--reconvergence] [--violations]\n"
                 "       [--calls] [--node N] [--kind NAME] [--lineage L] [--from T]\n"
                 "       [--to T] [--chain L]\n"
                 "       [--critical-path] [--top N] [--waterfall] [--flame OUT]\n"
                 "       [--retry-kind K]\n"
                 "  --calls groups call-event records into per-call leg timelines\n"
                 "  (combines with --node/--from/--to to narrow the set)\n"
                 "  --critical-path prices end-to-end latency: the witness chain to\n"
                 "  the last delivery, per-segment attribution, top-N slowest roots\n"
                 "  and per-node/per-link blame; --waterfall prints the winning\n"
                 "  chain leg by leg, --flame OUT writes it as a Chrome trace flame\n"
                 "  FILE may be a canonical export, a .fnspill file, or a directory\n"
                 "  of per-shard spill files (queries stream the merged records);\n"
                 "  --summary also accepts a metrics JSON export (profile + trace)\n";
    return 2;
}

bool read_file(const std::string& path, std::string& out) {
    std::ifstream f(path, std::ios::binary);
    if (!f) return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return static_cast<bool>(f);
}

/// Validates either export format, detected by its top-level marker.
int run_check(const std::string& path, const std::string& text) {
    obs::JsonValue doc;
    std::string error;
    if (!obs::json_parse(text, doc, &error)) {
        std::cerr << path << ": invalid JSON: " << error << "\n";
        return 1;
    }
    const bool is_chrome = doc.is_object() && doc.find("traceEvents") != nullptr;
    const bool ok = is_chrome ? obs::check_chrome(text, &error)
                              : obs::check_canonical(text, &error);
    if (!ok) {
        std::cerr << path << ": invalid " << (is_chrome ? "chrome" : "canonical")
                  << " trace: " << error << "\n";
        return 1;
    }
    std::cout << path << ": valid " << (is_chrome ? "chrome" : "canonical")
              << " trace\n";
    return 0;
}

/// TraceFilter as a single-record predicate (the streaming paths filter
/// during the merge instead of materializing first).
bool matches(const sim::TraceRecord& r, const obs::TraceFilter& f) {
    if (f.node && r.node != *f.node) return false;
    if (f.kind && r.kind != *f.kind) return false;
    if (f.lineage && r.lineage != *f.lineage) return false;
    if (f.from && r.at < *f.from) return false;
    if (f.to && r.at > *f.to) return false;
    return true;
}

/// Per-call leg reconstruction: every call-event record carries the
/// packed call id in `a` (source << 32 | seq), the CallEvent code in `b`
/// and the attempt number in `flag`, so grouping by `a` rebuilds each
/// call's full life across every node it touched — offered, placed,
/// per-hop reservations, rejects, retries, activation, release. Record
/// order is chronological.
int print_calls(const std::vector<sim::TraceRecord>& found) {
    if (found.empty()) {
        std::cout << "no call events recorded\n";
        return 0;
    }
    std::vector<std::uint64_t> order;
    std::map<std::uint64_t, std::vector<const sim::TraceRecord*>> by_call;
    for (const auto& r : found) {
        auto& legs = by_call[r.a];
        if (legs.empty()) order.push_back(r.a);
        legs.push_back(&r);
    }
    std::cout << order.size() << " call(s), " << found.size() << " call event(s)\n";
    for (const std::uint64_t key : order) {
        const auto& legs = by_call[key];
        const sim::TraceRecord& last = *legs.back();
        std::cout << "\ncall " << static_cast<NodeId>(key >> 32) << "."
                  << (key & 0xffffffffULL) << " — " << legs.size() << " leg(s), last "
                  << paris::call_event_name(static_cast<paris::CallEvent>(last.b))
                  << " at t=" << last.at << "\n";
        for (const sim::TraceRecord* r : legs)
            std::cout << "  t=" << r->at << " node=" << r->node << " "
                      << paris::call_event_name(static_cast<paris::CallEvent>(r->b))
                      << " attempt=" << static_cast<unsigned>(r->flag) << "\n";
    }
    return 0;
}

/// Loads the lineage index sidecar if present, else builds it from the
/// spill data and caches it for the next query (a failed cache write is
/// not an error — the index is already in memory).
bool load_lineage_index(const std::string& path, const std::vector<std::string>& files,
                        obs::LineageIndex& idx, std::string* error) {
    const std::string sidecar = obs::lineage_index_path(path);
    std::error_code ec;
    if (std::filesystem::exists(sidecar, ec) && idx.load(sidecar)) return true;
    if (!idx.build(files, error)) return false;
    idx.save(sidecar);
    return true;
}

/// Options of the --critical-path mode.
struct CriticalPathQuery {
    bool enabled = false;
    bool waterfall = false;
    std::string flame;  ///< Chrome-trace output path; empty = none.
    obs::CriticalPathConfig config;
};

/// Writes the winning chain as a self-contained Chrome trace: the
/// chain's own records plus the waterfall segments as a "critical path"
/// process overlaying them.
bool write_flame(const std::string& out_path, const obs::ExportMeta& meta,
                 const std::vector<sim::TraceRecord>& chain_records,
                 const obs::PathWaterfall& wf, std::string* error) {
    std::string out = obs::chrome_trace_header(meta);
    for (const sim::TraceRecord& r : chain_records) obs::append_chrome_record(out, r);
    obs::append_chrome_path_overlay(out, wf);
    out += obs::chrome_trace_footer(meta);
    std::ofstream f(out_path, std::ios::binary | std::ios::trunc);
    if (!f) {
        if (error) *error = "cannot create " + out_path;
        return false;
    }
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    if (!f) {
        if (error) *error = "write failed for " + out_path;
        return false;
    }
    return true;
}

/// The report body plus the optional waterfall / flame passes, given a
/// chain-record loader for the winning lineage (in-memory and spill
/// inputs differ only there).
int print_critical_path(
    const obs::CriticalPathReport& report, const CriticalPathQuery& q,
    const obs::ExportMeta& meta,
    const std::function<bool(std::uint64_t, std::vector<sim::TraceRecord>&,
                             std::string*)>& load_chain) {
    std::cout << obs::format_critical_path(report);
    if (!(q.waterfall || !q.flame.empty()) || !report.has_witness) return 0;
    std::string error;
    std::vector<sim::TraceRecord> chain_records;
    if (!load_chain(report.witness.terminal, chain_records, &error)) {
        std::cerr << error << "\n";
        return 1;
    }
    const obs::PathWaterfall wf =
        obs::path_waterfall(chain_records, report.witness, q.config);
    if (q.waterfall) std::cout << obs::format_waterfall(wf);
    if (!q.flame.empty()) {
        if (!write_flame(q.flame, meta, chain_records, wf, &error)) {
            std::cerr << error << "\n";
            return 1;
        }
        std::cout << "flame written to " << q.flame << "\n";
    }
    return 0;
}

/// --summary over a metrics JSON export: the per-protocol handler
/// profile and the trace-ring counters, which the JSON carries but no
/// CLI surfaced until now.
int print_metrics_summary(const std::string& path, const obs::JsonValue& doc) {
    const obs::JsonValue* name = doc.find("name");
    std::cout << "metrics \"" << (name != nullptr && name->is_string() ? name->string : "")
              << "\" (" << path << ")\n";
    if (const obs::JsonValue* t = doc.find("trace"); t != nullptr && t->is_object()) {
        const auto count = [&t](const char* key) -> std::uint64_t {
            const obs::JsonValue* v = t->find(key);
            return v != nullptr && v->is_uint() ? v->uint_value : 0;
        };
        std::cout << "trace ring: recorded=" << count("total_recorded")
                  << " dropped=" << count("dropped")
                  << " detail_dropped=" << count("detail_dropped")
                  << " spilled=" << count("spilled_records") << "\n";
        if (count("dropped") != 0)
            std::cout << "  WARNING: ring overflow truncated the trace — size the "
                         "ring up or enable spill\n";
    } else {
        std::cout << "trace ring: not recorded\n";
    }
    const obs::JsonValue* profile = doc.find("profile");
    if (profile == nullptr || !profile->is_array()) {
        std::cout << "profile: not recorded\n";
        return 0;
    }
    std::cout << "profile (" << profile->array.size() << " protocol(s)):\n";
    for (const obs::JsonValue& entry : profile->array) {
        if (!entry.is_object()) continue;
        const obs::JsonValue* proto = entry.find("protocol");
        std::cout << "  " << (proto != nullptr && proto->is_string() ? proto->string : "?");
        for (const auto& [key, value] : entry.object) {
            if (!value.is_uint()) continue;  // invocations / busy_ticks
            std::cout << " " << key << "=" << value.uint_value;
        }
        std::cout << "\n";
        for (const auto& [key, value] : entry.object) {
            if (!value.is_object()) continue;  // per-kind histogram
            const auto field = [&value](const char* k) -> std::uint64_t {
                const obs::JsonValue* v = value.find(k);
                return v != nullptr && v->is_uint() ? v->uint_value : 0;
            };
            std::cout << "    " << key << ": count=" << field("count")
                      << " sum=" << field("sum") << " min=" << field("min")
                      << " p50<=" << field("p50") << " p99<=" << field("p99")
                      << " max=" << field("max") << "\n";
        }
    }
    return 0;
}

/// All query modes over spill input, streaming the deterministic merge.
int run_spill(const std::string& path, bool check, bool summary, bool reconvergence,
              bool violations, bool calls, const obs::TraceFilter& filter,
              const std::optional<std::uint64_t>& chain, const CriticalPathQuery& cp) {
    std::string error;
    const std::vector<std::string> files = sim::spill_files(path, &error);
    if (files.empty()) {
        std::cerr << path << ": " << (error.empty() ? "no spill files" : error) << "\n";
        return 2;
    }
    if (cp.enabled) {
        obs::CriticalPathReport report;
        if (!obs::spill_critical_path(files, cp.config, report, &error)) {
            std::cerr << path << ": " << error << "\n";
            return 1;
        }
        obs::ExportMeta meta;
        meta.name = path;
        return print_critical_path(
            report, cp, meta,
            [&](std::uint64_t terminal, std::vector<sim::TraceRecord>& out,
                std::string* err) {
                obs::LineageIndex idx;
                if (!load_lineage_index(path, files, idx, err)) return false;
                return obs::spill_chain_records(files, idx, terminal, out, err);
            });
    }
    if (check || summary) {
        obs::SpillSummary s;
        if (!obs::spill_summarize(files, s, &error)) {
            std::cerr << path << ": " << error << "\n";
            return 1;
        }
        if (check) {
            std::cout << path << ": valid spill data (" << s.files << " file(s), "
                      << s.records << " record(s), " << s.stats.total_recorded
                      << " recorded" << (s.truncated ? ", tail recovered" : "") << ")\n";
            return 0;
        }
        std::cout << "spill " << path << ": " << s.files << " file(s), " << s.records
                  << " records (" << s.stats.total_recorded << " recorded, "
                  << s.stats.dropped << " dropped, " << s.stats.spilled_records
                  << " spilled)";
        if (s.records != 0)
            std::cout << " t=[" << s.first_at << ", " << s.last_at << "]";
        if (s.truncated) std::cout << " [tail recovered]";
        std::cout << "\n";
        for (unsigned k = 0; k < sim::kTraceKindCount; ++k)
            if (s.counts[k] != 0)
                std::cout << "  " << sim::trace_kind_name(static_cast<sim::TraceKind>(k))
                          << ": " << s.counts[k] << "\n";
        return 0;
    }
    if (chain) {
        obs::LineageIndex idx;
        if (!load_lineage_index(path, files, idx, &error)) {
            std::cerr << path << ": " << error << "\n";
            return 1;
        }
        const auto ancestry = idx.ancestry(*chain);
        if (ancestry.empty()) {
            std::cerr << "lineage " << *chain << " does not appear in the trace\n";
            return 1;
        }
        std::cout << "ancestry:";
        for (std::uint64_t lin : ancestry) std::cout << " " << lin;
        std::cout << "\n";
        std::vector<sim::TraceRecord> records;
        if (!obs::spill_collect(
                files,
                [&](const sim::TraceRecord& r) {
                    return r.lineage != 0 && std::find(ancestry.begin(), ancestry.end(),
                                                       r.lineage) != ancestry.end();
                },
                records, &error)) {
            std::cerr << path << ": " << error << "\n";
            return 1;
        }
        std::cout << obs::format_records(records);
        return 0;
    }
    if (violations) {
        std::vector<sim::TraceRecord> found;
        if (!obs::spill_collect(
                files,
                [](const sim::TraceRecord& r) {
                    return r.kind == sim::TraceKind::kViolation;
                },
                found, &error)) {
            std::cerr << path << ": " << error << "\n";
            return 1;
        }
        if (found.empty()) {
            std::cout << "no violations recorded\n";
            return 0;
        }
        std::cout << found.size() << " violation record(s):\n"
                  << obs::format_records(found);
        obs::LineageIndex idx;
        if (!load_lineage_index(path, files, idx, &error)) {
            std::cerr << path << ": " << error << "\n";
            return 1;
        }
        // One extra streaming pass covers every flagged lineage's chain:
        // collect the union of the ancestry sets, then split per lineage.
        std::vector<std::uint64_t> seen;
        std::vector<std::uint64_t> wanted;
        for (const auto& r : found) {
            if (r.lineage == 0) continue;
            if (std::find(seen.begin(), seen.end(), r.lineage) != seen.end()) continue;
            seen.push_back(r.lineage);
            for (std::uint64_t lin : idx.ancestry(r.lineage))
                if (std::find(wanted.begin(), wanted.end(), lin) == wanted.end())
                    wanted.push_back(lin);
        }
        std::vector<sim::TraceRecord> pool;
        if (!seen.empty() &&
            !obs::spill_collect(
                files,
                [&](const sim::TraceRecord& r) {
                    return r.lineage != 0 && std::find(wanted.begin(), wanted.end(),
                                                       r.lineage) != wanted.end();
                },
                pool, &error)) {
            std::cerr << path << ": " << error << "\n";
            return 1;
        }
        for (const std::uint64_t lineage : seen) {
            const auto ancestry = idx.ancestry(lineage);
            std::cout << "\nlineage " << lineage << " ancestry:";
            for (std::uint64_t lin : ancestry) std::cout << " " << lin;
            std::cout << "\n";
            std::vector<sim::TraceRecord> chain_records;
            for (const auto& r : pool)
                if (std::find(ancestry.begin(), ancestry.end(), r.lineage) !=
                    ancestry.end())
                    chain_records.push_back(r);
            std::cout << obs::format_records(chain_records);
        }
        return 1;
    }
    if (calls) {
        obs::TraceFilter cf = filter;
        cf.kind = sim::TraceKind::kCallEvent;
        std::vector<sim::TraceRecord> found;
        if (!obs::spill_collect(
                files, [&](const sim::TraceRecord& r) { return matches(r, cf); }, found,
                &error)) {
            std::cerr << path << ": " << error << "\n";
            return 1;
        }
        return print_calls(found);
    }
    std::vector<sim::TraceRecord> records;
    if (!obs::spill_collect(
            files,
            [&](const sim::TraceRecord& r) {
                return reconvergence || matches(r, filter);
            },
            records, &error)) {
        std::cerr << path << ": " << error << "\n";
        return 1;
    }
    if (reconvergence) {
        std::cout << obs::format_reconvergence(records);
        return 0;
    }
    std::cout << obs::format_records(records);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::string path;
    bool check = false, summary = false, reconvergence = false, violations = false;
    bool calls = false;
    obs::TraceFilter filter;
    std::optional<std::uint64_t> chain;
    CriticalPathQuery cp;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--check") == 0) {
            check = true;
        } else if (std::strcmp(arg, "--critical-path") == 0) {
            cp.enabled = true;
        } else if (std::strcmp(arg, "--top") == 0 && has_value) {
            cp.config.top = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--waterfall") == 0) {
            cp.waterfall = true;
        } else if (std::strcmp(arg, "--flame") == 0 && has_value) {
            cp.flame = argv[++i];
        } else if (std::strcmp(arg, "--retry-kind") == 0 && has_value) {
            cp.config.retry_cookie_kind =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(arg, "--summary") == 0) {
            summary = true;
        } else if (std::strcmp(arg, "--reconvergence") == 0) {
            reconvergence = true;
        } else if (std::strcmp(arg, "--violations") == 0) {
            violations = true;
        } else if (std::strcmp(arg, "--calls") == 0) {
            calls = true;
        } else if (std::strcmp(arg, "--node") == 0 && has_value) {
            filter.node = static_cast<NodeId>(std::strtoull(argv[++i], nullptr, 10));
        } else if (std::strcmp(arg, "--kind") == 0 && has_value) {
            sim::TraceKind kind;
            if (!sim::trace_kind_from_name(argv[++i], kind)) {
                std::cerr << "unknown kind \"" << argv[i] << "\"\n";
                return 2;
            }
            filter.kind = kind;
        } else if (std::strcmp(arg, "--lineage") == 0 && has_value) {
            filter.lineage = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--from") == 0 && has_value) {
            filter.from = static_cast<Tick>(std::strtoll(argv[++i], nullptr, 10));
        } else if (std::strcmp(arg, "--to") == 0 && has_value) {
            filter.to = static_cast<Tick>(std::strtoll(argv[++i], nullptr, 10));
        } else if (std::strcmp(arg, "--chain") == 0 && has_value) {
            chain = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (path.empty()) return usage(argv[0]);

    std::error_code ec;
    if (std::filesystem::is_directory(path, ec) || sim::is_spill_file(path))
        return run_spill(path, check, summary, reconvergence, violations, calls, filter,
                         chain, cp);

    std::string text;
    if (!read_file(path, text)) {
        std::cerr << "cannot read " << path << "\n";
        return 2;
    }
    if (check) return run_check(path, text);

    if (summary) {
        // A metrics export is not a trace, but its profile and trace-ring
        // sections are summary material — accept it here.
        obs::JsonValue doc;
        if (obs::json_parse(text, doc) && doc.find("fastnet_metrics") != nullptr)
            return print_metrics_summary(path, doc);
    }

    obs::LoadedTrace trace;
    std::string error;
    if (!obs::load_canonical(text, trace, &error)) {
        std::cerr << path << ": " << error
                  << "\n(only canonical exports are queryable; --check accepts both "
                     "formats)\n";
        return 1;
    }

    if (cp.enabled) {
        const obs::CriticalPathReport report = obs::critical_path(trace.records, cp.config);
        return print_critical_path(
            report, cp, trace.meta,
            [&trace](std::uint64_t terminal, std::vector<sim::TraceRecord>& out,
                     std::string*) {
                out = obs::causal_chain(trace.records, terminal);
                return true;
            });
    }

    if (chain) {
        const auto ancestry = obs::lineage_ancestry(trace.records, *chain);
        if (ancestry.empty()) {
            std::cerr << "lineage " << *chain << " does not appear in the trace\n";
            return 1;
        }
        std::cout << "ancestry:";
        for (std::uint64_t lin : ancestry) std::cout << " " << lin;
        std::cout << "\n";
        std::cout << obs::format_records(obs::causal_chain(trace.records, *chain));
        return 0;
    }
    if (reconvergence) {
        std::cout << obs::format_reconvergence(trace.records);
        return 0;
    }
    if (calls) {
        obs::TraceFilter cf = filter;
        cf.kind = sim::TraceKind::kCallEvent;
        return print_calls(obs::filter_records(trace.records, cf));
    }
    if (violations) {
        // Shorthand for --kind violation, plus the causal history of every
        // packet lineage a monitor flagged. Exits 1 when any violation is
        // recorded, so scripts can gate on it directly.
        obs::TraceFilter vf;
        vf.kind = sim::TraceKind::kViolation;
        const auto found = obs::filter_records(trace.records, vf);
        if (found.empty()) {
            std::cout << "no violations recorded\n";
            return 0;
        }
        std::cout << found.size() << " violation record(s):\n"
                  << obs::format_records(found);
        std::vector<std::uint64_t> seen;
        for (const auto& r : found) {
            if (r.lineage == 0) continue;
            if (std::find(seen.begin(), seen.end(), r.lineage) != seen.end()) continue;
            seen.push_back(r.lineage);
            std::cout << "\nlineage " << r.lineage << " ancestry:";
            for (std::uint64_t lin : obs::lineage_ancestry(trace.records, r.lineage))
                std::cout << " " << lin;
            std::cout << "\n"
                      << obs::format_records(obs::causal_chain(trace.records, r.lineage));
        }
        return 1;
    }
    if (summary) {
        std::cout << "trace \"" << trace.meta.name << "\": " << trace.meta.nodes
                  << " nodes, " << trace.meta.edges.size() << " edges, "
                  << trace.records.size() << " records (" << trace.total_recorded
                  << " recorded, " << trace.dropped << " dropped)\n";
        const auto counts = obs::kind_counts(trace.records);
        for (unsigned k = 0; k < sim::kTraceKindCount; ++k)
            if (counts[k] != 0)
                std::cout << "  " << sim::trace_kind_name(static_cast<sim::TraceKind>(k))
                          << ": " << counts[k] << "\n";
        return 0;
    }
    std::cout << obs::format_records(obs::filter_records(trace.records, filter));
    return 0;
}
