// fastnet_trace: inspect exported traces from the command line.
//
// Reads a canonical trace export (see src/obs/trace_export.hpp) and
// filters, summarizes or causally reconstructs it — everything the
// in-process query API (src/obs/trace_query.hpp) offers, available
// offline on the file alone. `--check` validates either export format
// (canonical or Chrome trace-event JSON) and is what the TraceSmoke
// ctest runs against freshly exported files.
//
//   fastnet_trace trace.json                      # print all records
//   fastnet_trace trace.json --node 3 --kind drop # filter
//   fastnet_trace trace.json --lineage 17         # one lineage's records
//   fastnet_trace trace.json --chain 17           # full causal chain
//   fastnet_trace trace.json --summary            # per-kind counts
//   fastnet_trace trace.json --reconvergence      # crash/recovery timeline
//   fastnet_trace trace.json --violations         # violations + causal chains
//   fastnet_trace trace.json --calls              # per-call leg reconstruction
//   fastnet_trace trace.json --check              # schema validation only
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_query.hpp"
#include "paris/call_setup.hpp"

using namespace fastnet;

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " FILE [--check] [--summary] [--reconvergence] [--violations]\n"
                 "       [--calls] [--node N] [--kind NAME] [--lineage L] [--from T]\n"
                 "       [--to T] [--chain L]\n"
                 "  --calls groups call-event records into per-call leg timelines\n"
                 "  (combines with --node/--from/--to to narrow the set)\n";
    return 2;
}

bool read_file(const std::string& path, std::string& out) {
    std::ifstream f(path, std::ios::binary);
    if (!f) return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return static_cast<bool>(f);
}

/// Validates either export format, detected by its top-level marker.
int run_check(const std::string& path, const std::string& text) {
    obs::JsonValue doc;
    std::string error;
    if (!obs::json_parse(text, doc, &error)) {
        std::cerr << path << ": invalid JSON: " << error << "\n";
        return 1;
    }
    const bool is_chrome = doc.is_object() && doc.find("traceEvents") != nullptr;
    const bool ok = is_chrome ? obs::check_chrome(text, &error)
                              : obs::check_canonical(text, &error);
    if (!ok) {
        std::cerr << path << ": invalid " << (is_chrome ? "chrome" : "canonical")
                  << " trace: " << error << "\n";
        return 1;
    }
    std::cout << path << ": valid " << (is_chrome ? "chrome" : "canonical")
              << " trace\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::string path;
    bool check = false, summary = false, reconvergence = false, violations = false;
    bool calls = false;
    obs::TraceFilter filter;
    std::optional<std::uint64_t> chain;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--check") == 0) {
            check = true;
        } else if (std::strcmp(arg, "--summary") == 0) {
            summary = true;
        } else if (std::strcmp(arg, "--reconvergence") == 0) {
            reconvergence = true;
        } else if (std::strcmp(arg, "--violations") == 0) {
            violations = true;
        } else if (std::strcmp(arg, "--calls") == 0) {
            calls = true;
        } else if (std::strcmp(arg, "--node") == 0 && has_value) {
            filter.node = static_cast<NodeId>(std::strtoull(argv[++i], nullptr, 10));
        } else if (std::strcmp(arg, "--kind") == 0 && has_value) {
            sim::TraceKind kind;
            if (!sim::trace_kind_from_name(argv[++i], kind)) {
                std::cerr << "unknown kind \"" << argv[i] << "\"\n";
                return 2;
            }
            filter.kind = kind;
        } else if (std::strcmp(arg, "--lineage") == 0 && has_value) {
            filter.lineage = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(arg, "--from") == 0 && has_value) {
            filter.from = static_cast<Tick>(std::strtoll(argv[++i], nullptr, 10));
        } else if (std::strcmp(arg, "--to") == 0 && has_value) {
            filter.to = static_cast<Tick>(std::strtoll(argv[++i], nullptr, 10));
        } else if (std::strcmp(arg, "--chain") == 0 && has_value) {
            chain = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (path.empty()) return usage(argv[0]);

    std::string text;
    if (!read_file(path, text)) {
        std::cerr << "cannot read " << path << "\n";
        return 2;
    }
    if (check) return run_check(path, text);

    obs::LoadedTrace trace;
    std::string error;
    if (!obs::load_canonical(text, trace, &error)) {
        std::cerr << path << ": " << error
                  << "\n(only canonical exports are queryable; --check accepts both "
                     "formats)\n";
        return 1;
    }

    if (chain) {
        const auto ancestry = obs::lineage_ancestry(trace.records, *chain);
        if (ancestry.empty()) {
            std::cerr << "lineage " << *chain << " does not appear in the trace\n";
            return 1;
        }
        std::cout << "ancestry:";
        for (std::uint64_t lin : ancestry) std::cout << " " << lin;
        std::cout << "\n";
        std::cout << obs::format_records(obs::causal_chain(trace.records, *chain));
        return 0;
    }
    if (reconvergence) {
        std::cout << obs::format_reconvergence(trace.records);
        return 0;
    }
    if (calls) {
        // Per-call leg reconstruction: every call-event record carries
        // the packed call id in `a` (source << 32 | seq), the CallEvent
        // code in `b` and the attempt number in `flag`, so grouping by
        // `a` rebuilds each call's full life across every node it
        // touched — offered, placed, per-hop reservations, rejects,
        // retries, activation, release. Ring order is chronological.
        obs::TraceFilter cf = filter;
        cf.kind = sim::TraceKind::kCallEvent;
        const auto found = obs::filter_records(trace.records, cf);
        if (found.empty()) {
            std::cout << "no call events recorded\n";
            return 0;
        }
        std::vector<std::uint64_t> order;
        std::map<std::uint64_t, std::vector<const sim::TraceRecord*>> by_call;
        for (const auto& r : found) {
            auto& legs = by_call[r.a];
            if (legs.empty()) order.push_back(r.a);
            legs.push_back(&r);
        }
        std::cout << order.size() << " call(s), " << found.size()
                  << " call event(s)\n";
        for (const std::uint64_t key : order) {
            const auto& legs = by_call[key];
            const sim::TraceRecord& last = *legs.back();
            std::cout << "\ncall " << static_cast<NodeId>(key >> 32) << "."
                      << (key & 0xffffffffULL) << " — " << legs.size()
                      << " leg(s), last "
                      << paris::call_event_name(
                             static_cast<paris::CallEvent>(last.b))
                      << " at t=" << last.at << "\n";
            for (const sim::TraceRecord* r : legs)
                std::cout << "  t=" << r->at << " node=" << r->node << " "
                          << paris::call_event_name(
                                 static_cast<paris::CallEvent>(r->b))
                          << " attempt=" << static_cast<unsigned>(r->flag)
                          << "\n";
        }
        return 0;
    }
    if (violations) {
        // Shorthand for --kind violation, plus the causal history of every
        // packet lineage a monitor flagged. Exits 1 when any violation is
        // recorded, so scripts can gate on it directly.
        obs::TraceFilter vf;
        vf.kind = sim::TraceKind::kViolation;
        const auto found = obs::filter_records(trace.records, vf);
        if (found.empty()) {
            std::cout << "no violations recorded\n";
            return 0;
        }
        std::cout << found.size() << " violation record(s):\n"
                  << obs::format_records(found);
        std::vector<std::uint64_t> seen;
        for (const auto& r : found) {
            if (r.lineage == 0) continue;
            if (std::find(seen.begin(), seen.end(), r.lineage) != seen.end()) continue;
            seen.push_back(r.lineage);
            std::cout << "\nlineage " << r.lineage << " ancestry:";
            for (std::uint64_t lin : obs::lineage_ancestry(trace.records, r.lineage))
                std::cout << " " << lin;
            std::cout << "\n"
                      << obs::format_records(obs::causal_chain(trace.records, r.lineage));
        }
        return 1;
    }
    if (summary) {
        std::cout << "trace \"" << trace.meta.name << "\": " << trace.meta.nodes
                  << " nodes, " << trace.meta.edges.size() << " edges, "
                  << trace.records.size() << " records (" << trace.total_recorded
                  << " recorded, " << trace.dropped << " dropped)\n";
        const auto counts = obs::kind_counts(trace.records);
        for (unsigned k = 0; k < sim::kTraceKindCount; ++k)
            if (counts[k] != 0)
                std::cout << "  " << sim::trace_kind_name(static_cast<sim::TraceKind>(k))
                          << ": " << counts[k] << "\n";
        return 0;
    }
    std::cout << obs::format_records(obs::filter_records(trace.records, filter));
    return 0;
}
